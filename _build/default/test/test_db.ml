(* Tests for the data-base manager layer: block store, B+-tree, relative and
   entry-sequenced files, secondary indices, schema and partitioning. *)

open Tandem_sim
open Tandem_db

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Stores used purely as data structures run uncharged: no fiber context is
   needed and volumes never sleep. *)
let make_store ?(cache = 64) () =
  let engine = Engine.create () in
  let metrics = Metrics.create () in
  let volume =
    Tandem_disk.Volume.create engine ~metrics ~name:"$DATA"
      ~access_time:(Sim_time.milliseconds 25)
  in
  let store = Store.create volume ~cache_capacity:cache in
  Store.set_charging store false;
  store

let expect_ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "unexpected error result"

(* ------------------------------------------------------------------ *)
(* Record codec *)

let test_record_codec_round_trip () =
  let fields = [ ("balance", "100"); ("branch", "SF"); ("note", "") ] in
  Alcotest.(check (list (pair string string)))
    "round trip" fields
    (Record.decode (Record.encode fields));
  check_string "empty" "" (Record.encode []);
  Alcotest.(check (list (pair string string))) "decode empty" []
    (Record.decode "")

let test_record_field_ops () =
  let payload = Record.encode [ ("balance", "100"); ("branch", "SF") ] in
  Alcotest.(check (option string)) "field" (Some "SF")
    (Record.field payload "branch");
  Alcotest.(check (option int)) "int field" (Some 100)
    (Record.int_field payload "balance");
  let updated = Record.set_field payload "balance" "250" in
  Alcotest.(check (option int)) "updated" (Some 250)
    (Record.int_field updated "balance");
  let extended = Record.set_field payload "status" "open" in
  Alcotest.(check (option string)) "added" (Some "open")
    (Record.field extended "status")

let test_record_nested_encoding () =
  (* A whole encoded record carried inside a field of another. *)
  let inner = Record.encode [ ("descr", "rev B"); ("master", "2") ] in
  let outer = Record.encode [ ("target", "4"); ("data", inner) ] in
  Alcotest.(check (option string)) "inner intact" (Some inner)
    (Record.field outer "data");
  Alcotest.(check (option string)) "inner field recoverable" (Some "rev B")
    (Option.bind (Record.field outer "data") (fun p -> Record.field p "descr"))

let test_record_malformed_rejected () =
  Alcotest.check_raises "garbage rejected"
    (Invalid_argument "Record.decode: missing length delimiter") (fun () ->
      ignore (Record.decode "notarecord"))

(* ------------------------------------------------------------------ *)
(* Store *)

let test_store_alloc_read_write () =
  let store = make_store () in
  let content keys =
    Block_content.Btree_leaf
      { keys; payloads = Array.map (fun k -> k ^ "!") keys; next_leaf = None }
  in
  let b0 = Store.alloc store (content [| "a" |]) in
  let b1 = Store.alloc store (content [| "b" |]) in
  check_bool "distinct blocks" true (b0 <> b1);
  (match Store.read store b0 with
  | Block_content.Btree_leaf { keys; _ } -> check_string "read back" "a" keys.(0)
  | _ -> Alcotest.fail "wrong content");
  Store.write store b0 (content [| "z" |]);
  (match Store.read store b0 with
  | Block_content.Btree_leaf { keys; _ } -> check_string "updated" "z" keys.(0)
  | _ -> Alcotest.fail "wrong content");
  Store.free store b0;
  Alcotest.check_raises "freed block" Not_found (fun () ->
      ignore (Store.read store b0))

let test_store_crash_loses_unflushed () =
  let store = make_store () in
  let content tag =
    Block_content.Entry_segment { base_entry = 0; entries = [| tag |] }
  in
  let b = Store.alloc store (content "v1") in
  Store.overwrite_disk_image store;
  Store.write store b (content "v2");
  (* v2 was never flushed: a double failure reverts to v1. *)
  Store.crash store;
  (match Store.read store b with
  | Block_content.Entry_segment { entries; _ } ->
      check_string "reverted to flushed image" "v1" entries.(0)
  | _ -> Alcotest.fail "wrong content");
  (* Now flush before crashing: v3 survives. *)
  Store.write store b (content "v3");
  Store.flush_all store;
  Store.crash store;
  match Store.read store b with
  | Block_content.Entry_segment { entries; _ } ->
      check_string "flushed image survives" "v3" entries.(0)
  | _ -> Alcotest.fail "wrong content"

let test_store_charging_counts_io () =
  (* With charging on, a cache miss must become a physical read; run inside
     a fiber so sleeps work. *)
  let engine = Engine.create () in
  let metrics = Metrics.create () in
  let volume =
    Tandem_disk.Volume.create engine ~metrics ~name:"$DATA"
      ~access_time:(Sim_time.milliseconds 25)
  in
  let store = Store.create volume ~cache_capacity:2 in
  Store.set_charging store false;
  let content tag =
    Block_content.Entry_segment { base_entry = 0; entries = [| tag |] }
  in
  let blocks = List.init 4 (fun i -> Store.alloc store (content (string_of_int i))) in
  Store.set_charging store true;
  ignore
    (Fiber.spawn (fun () ->
         (* Touch all four blocks twice through a 2-block cache. *)
         List.iter (fun b -> ignore (Store.read store b)) blocks;
         List.iter (fun b -> ignore (Store.read store b)) blocks));
  Engine.run engine;
  check_bool "at least 8 misses" true (Store.cache_misses store >= 8);
  check_int "8 physical reads" 8 (Tandem_disk.Volume.reads volume);
  check_bool "time charged" true (Engine.now engine >= Sim_time.milliseconds 100)

let test_dirty_eviction_writes_back () =
  let engine = Engine.create () in
  let metrics = Metrics.create () in
  let volume =
    Tandem_disk.Volume.create engine ~metrics ~name:"$DATA"
      ~access_time:(Sim_time.milliseconds 25)
  in
  let store = Store.create volume ~cache_capacity:1 in
  Store.set_charging store false;
  let content tag =
    Block_content.Entry_segment { base_entry = 0; entries = [| tag |] }
  in
  let b0 = Store.alloc store (content "a") in
  let b1 = Store.alloc store (content "b") in
  Store.overwrite_disk_image store;
  Store.set_charging store true;
  ignore
    (Fiber.spawn (fun () ->
         Store.write store b0 (content "a2");
         (* Evicts dirty b0. *)
         ignore (Store.read store b1)));
  Engine.run engine;
  check_bool "write-back happened" true (Tandem_disk.Volume.writes volume >= 1);
  (* The write-back flushed a2: a crash keeps it. *)
  Store.set_charging store false;
  Store.crash store;
  match Store.read store b0 with
  | Block_content.Entry_segment { entries; _ } ->
      check_string "evicted dirty block was flushed" "a2" entries.(0)
  | _ -> Alcotest.fail "wrong content"

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_lru_policy () =
  let cache = Tandem_disk.Cache.create ~capacity:2 in
  let miss b =
    match Tandem_disk.Cache.touch cache b with
    | `Miss e -> e
    | `Hit -> Alcotest.fail "expected miss"
  in
  let hit b =
    match Tandem_disk.Cache.touch cache b with
    | `Hit -> ()
    | `Miss _ -> Alcotest.fail "expected hit"
  in
  ignore (miss 1);
  ignore (miss 2);
  hit 1;
  (* 2 is now least-recently-used. *)
  (match miss 3 with
  | Some { Tandem_disk.Cache.block = 2; _ } -> ()
  | _ -> Alcotest.fail "expected eviction of block 2");
  hit 1;
  hit 3

let test_cache_dirty_tracking () =
  let cache = Tandem_disk.Cache.create ~capacity:2 in
  ignore (Tandem_disk.Cache.touch cache 1);
  Tandem_disk.Cache.mark_dirty cache 1;
  check_bool "dirty" true (Tandem_disk.Cache.is_dirty cache 1);
  Alcotest.(check (list int)) "dirty list" [ 1 ]
    (Tandem_disk.Cache.dirty_blocks cache);
  Tandem_disk.Cache.clean cache 1;
  check_bool "cleaned" false (Tandem_disk.Cache.is_dirty cache 1);
  (* Evicting a dirty block reports it dirty. *)
  Tandem_disk.Cache.mark_dirty cache 1;
  ignore (Tandem_disk.Cache.touch cache 2);
  match Tandem_disk.Cache.touch cache 3 with
  | `Miss (Some { Tandem_disk.Cache.block = 1; dirty = true }) -> ()
  | _ -> Alcotest.fail "expected dirty eviction of 1"

(* ------------------------------------------------------------------ *)
(* B+-tree *)

let make_tree ?(degree = 2) () =
  Btree.create (make_store ()) ~name:"T" ~degree

let test_btree_basic () =
  let tree = make_tree () in
  Alcotest.(check (option string)) "empty find" None (Btree.find tree "k");
  expect_ok (Btree.insert tree "b" "2");
  expect_ok (Btree.insert tree "a" "1");
  expect_ok (Btree.insert tree "c" "3");
  Alcotest.(check (option string)) "find a" (Some "1") (Btree.find tree "a");
  Alcotest.(check (option string)) "find c" (Some "3") (Btree.find tree "c");
  check_int "count" 3 (Btree.count tree);
  (match Btree.insert tree "a" "dup" with
  | Error `Duplicate -> ()
  | Ok () -> Alcotest.fail "duplicate accepted");
  check_string "update" "1" (expect_ok (Btree.update tree "a" "1'"));
  Alcotest.(check (option string)) "updated" (Some "1'") (Btree.find tree "a");
  check_string "delete returns before" "2" (expect_ok (Btree.delete tree "b"));
  Alcotest.(check (option string)) "deleted" None (Btree.find tree "b");
  check_int "count after delete" 2 (Btree.count tree);
  (match Btree.delete tree "b" with
  | Error `Not_found -> ()
  | Ok _ -> Alcotest.fail "double delete succeeded");
  expect_ok (Btree.check_invariants tree)

let test_btree_many_inserts_split () =
  let tree = make_tree ~degree:2 () in
  for i = 0 to 199 do
    expect_ok (Btree.insert tree (Key.of_int i) (string_of_int i))
  done;
  check_int "count" 200 (Btree.count tree);
  check_bool "tree grew" true (Btree.height tree > 1);
  for i = 0 to 199 do
    Alcotest.(check (option string))
      "find each" (Some (string_of_int i))
      (Btree.find tree (Key.of_int i))
  done;
  expect_ok (Btree.check_invariants tree)

let test_btree_range_and_order () =
  let tree = make_tree ~degree:3 () in
  let shuffled = [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ] in
  List.iter
    (fun i -> expect_ok (Btree.insert tree (Key.of_int i) (string_of_int i)))
    shuffled;
  let all = Btree.to_alist tree in
  Alcotest.(check (list string))
    "ascending order"
    (List.init 10 string_of_int)
    (List.map snd all);
  let mid = Btree.range tree ~lo:(Key.of_int 3) ~hi:(Key.of_int 6) in
  Alcotest.(check (list string)) "range" [ "3"; "4"; "5"; "6" ]
    (List.map snd mid);
  Alcotest.(check (list string)) "empty range" []
    (List.map snd (Btree.range tree ~lo:(Key.of_int 20) ~hi:(Key.of_int 30)));
  match Btree.next_after tree (Key.of_int 4) with
  | Some (_, "5") -> ()
  | _ -> Alcotest.fail "next_after"

let test_btree_delete_then_scan () =
  let tree = make_tree ~degree:2 () in
  for i = 0 to 49 do
    expect_ok (Btree.insert tree (Key.of_int i) (string_of_int i))
  done;
  (* Delete every even key — leaves go under-full, some empty. *)
  for i = 0 to 49 do
    if i mod 2 = 0 then ignore (Btree.delete tree (Key.of_int i))
  done;
  check_int "count" 25 (Btree.count tree);
  let remaining = List.map snd (Btree.to_alist tree) in
  Alcotest.(check (list string))
    "odds remain"
    (List.filter_map
       (fun i -> if i mod 2 = 1 then Some (string_of_int i) else None)
       (List.init 50 Fun.id))
    remaining;
  expect_ok (Btree.check_invariants tree)

(* Model-based property: a random operation sequence applied to the tree and
   to a reference Map must agree at every step. *)
let btree_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun k -> `Insert (k mod 64)) nat);
        (2, map (fun k -> `Delete (k mod 64)) nat);
        (2, map (fun k -> `Update (k mod 64)) nat);
        (1, map (fun k -> `Find (k mod 64)) nat);
      ])

let prop_btree_matches_model =
  QCheck.Test.make ~name:"btree agrees with Map model" ~count:120
    (QCheck.make QCheck.Gen.(list_size (1 -- 200) btree_op_gen))
    (fun ops ->
      let module M = Map.Make (String) in
      let tree = make_tree ~degree:2 () in
      let model = ref M.empty in
      let serial = ref 0 in
      List.iter
        (fun op ->
          incr serial;
          let value = string_of_int !serial in
          match op with
          | `Insert k ->
              let key = Key.of_int k in
              let tree_result = Btree.insert tree key value in
              if M.mem key !model then assert (tree_result = Error `Duplicate)
              else begin
                assert (tree_result = Ok ());
                model := M.add key value !model
              end
          | `Delete k ->
              let key = Key.of_int k in
              let tree_result = Btree.delete tree key in
              (match M.find_opt key !model with
              | Some v ->
                  assert (tree_result = Ok v);
                  model := M.remove key !model
              | None -> assert (tree_result = Error `Not_found))
          | `Update k ->
              let key = Key.of_int k in
              let tree_result = Btree.update tree key value in
              (match M.find_opt key !model with
              | Some v ->
                  assert (tree_result = Ok v);
                  model := M.add key value !model
              | None -> assert (tree_result = Error `Not_found))
          | `Find k ->
              let key = Key.of_int k in
              assert (Btree.find tree key = M.find_opt key !model))
        ops;
      (match Btree.check_invariants tree with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "invariant: %s" m);
      Btree.to_alist tree = M.bindings !model)

let prop_btree_range_matches_model =
  QCheck.Test.make ~name:"btree range agrees with Map model" ~count:80
    QCheck.(triple (list (int_bound 99)) (int_bound 99) (int_bound 99))
    (fun (keys, a, b) ->
      let module M = Map.Make (String) in
      let tree = make_tree ~degree:2 () in
      let model = ref M.empty in
      List.iter
        (fun k ->
          let key = Key.of_int k in
          match Btree.insert tree key (string_of_int k) with
          | Ok () -> model := M.add key (string_of_int k) !model
          | Error `Duplicate -> ())
        keys;
      let lo = Key.of_int (min a b) and hi = Key.of_int (max a b) in
      let expected =
        M.bindings !model
        |> List.filter (fun (k, _) ->
               Key.compare k lo >= 0 && Key.compare k hi <= 0)
      in
      Btree.range tree ~lo ~hi = expected)

(* ------------------------------------------------------------------ *)
(* Relative and entry-sequenced files *)

let test_relative_file () =
  let file = Relative_file.create (make_store ()) ~name:"R" ~slots_per_segment:4 in
  Alcotest.(check (option string)) "empty" None (Relative_file.read_slot file 0);
  Alcotest.(check (option string)) "first write" None
    (Relative_file.write_slot file 5 "five");
  Alcotest.(check (option string)) "read back" (Some "five")
    (Relative_file.read_slot file 5);
  Alcotest.(check (option string)) "overwrite returns before" (Some "five")
    (Relative_file.write_slot file 5 "FIVE");
  check_int "count" 1 (Relative_file.record_count file);
  ignore (Relative_file.write_slot file 0 "zero");
  ignore (Relative_file.write_slot file 9 "nine");
  check_int "count 3" 3 (Relative_file.record_count file);
  check_int "highest" 9 (Relative_file.highest_slot file);
  let visited = ref [] in
  Relative_file.iter file (fun slot payload ->
      visited := (slot, payload) :: !visited);
  Alcotest.(check (list (pair int string)))
    "iter ascending"
    [ (0, "zero"); (5, "FIVE"); (9, "nine") ]
    (List.rev !visited);
  Alcotest.(check (option string)) "delete" (Some "zero")
    (Relative_file.delete_slot file 0);
  check_int "count after delete" 2 (Relative_file.record_count file)

let test_entry_file () =
  let file = Entry_file.create (make_store ()) ~name:"E" ~entries_per_segment:3 in
  let numbers = List.map (fun i -> Entry_file.append file (Printf.sprintf "e%d" i)) [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "dense numbering" [ 0; 1; 2; 3; 4 ] numbers;
  check_int "count" 5 (Entry_file.count file);
  Alcotest.(check (option string)) "read 3" (Some "e3") (Entry_file.read_entry file 3);
  Alcotest.(check (option string)) "read oob" None (Entry_file.read_entry file 9);
  let seen = ref [] in
  Entry_file.iter_from file 2 (fun i payload -> seen := (i, payload) :: !seen);
  Alcotest.(check (list (pair int string)))
    "iter_from" [ (2, "e2"); (3, "e3"); (4, "e4") ] (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Secondary indices through File *)

let accounts_def =
  Schema.define ~name:"ACCOUNTS" ~organization:Schema.Key_sequenced ~degree:3
    ~indices:[ { Schema.index_name = "ACCT-BY-BRANCH"; on_field = "branch" } ]
    ~partitions:[ { Schema.low_key = Key.min_key; node = 1; volume = "$DATA" } ]
    ()

let test_file_with_index () =
  let file = File.create (make_store ()) accounts_def in
  let pay branch balance =
    Record.encode [ ("branch", branch); ("balance", string_of_int balance) ]
  in
  ignore (expect_ok (File.insert file (Key.of_int 1) (pay "SF" 100)));
  ignore (expect_ok (File.insert file (Key.of_int 2) (pay "NY" 200)));
  ignore (expect_ok (File.insert file (Key.of_int 3) (pay "SF" 300)));
  Alcotest.(check (list string))
    "index lookup"
    [ Key.of_int 1; Key.of_int 3 ]
    (File.lookup_index file ~index:"ACCT-BY-BRANCH" "SF");
  (* Update moves a record between branches; index follows. *)
  ignore (expect_ok (File.update file (Key.of_int 1) (pay "NY" 100)));
  Alcotest.(check (list string))
    "index after update" [ Key.of_int 3 ]
    (File.lookup_index file ~index:"ACCT-BY-BRANCH" "SF");
  Alcotest.(check (list string))
    "other side" [ Key.of_int 1; Key.of_int 2 ]
    (File.lookup_index file ~index:"ACCT-BY-BRANCH" "NY");
  ignore (expect_ok (File.delete file (Key.of_int 2)));
  Alcotest.(check (list string))
    "index after delete" [ Key.of_int 1 ]
    (File.lookup_index file ~index:"ACCT-BY-BRANCH" "NY");
  expect_ok (File.check_invariants file)

let test_file_undo_redo () =
  let file = File.create (make_store ()) accounts_def in
  let pay balance = Record.encode [ ("branch", "SF"); ("balance", string_of_int balance) ] in
  let insert_change = expect_ok (File.insert file (Key.of_int 1) (pay 100)) in
  let update_change = expect_ok (File.update file (Key.of_int 1) (pay 150)) in
  (* Undo in reverse order restores the initial state. *)
  File.apply_undo file update_change;
  Alcotest.(check (option int)) "update undone" (Some 100)
    (Option.bind (File.read file (Key.of_int 1)) (fun p -> Record.int_field p "balance"));
  File.apply_undo file insert_change;
  Alcotest.(check (option string)) "insert undone" None (File.read file (Key.of_int 1));
  check_int "empty again" 0 (File.count file);
  expect_ok (File.check_invariants file);
  (* Redo re-imposes the after-images; idempotently. *)
  File.apply_redo file insert_change;
  File.apply_redo file update_change;
  File.apply_redo file update_change;
  Alcotest.(check (option int)) "redone" (Some 150)
    (Option.bind (File.read file (Key.of_int 1)) (fun p -> Record.int_field p "balance"));
  expect_ok (File.check_invariants file)

let test_entry_organization_append_and_undo () =
  let def =
    Schema.define ~name:"HISTORY" ~organization:Schema.Entry_sequenced
      ~degree:8
      ~partitions:[ { Schema.low_key = Key.min_key; node = 1; volume = "$D" } ]
      ()
  in
  let file = File.create (make_store ()) def in
  let key0, change0 =
    match File.append file "first" with
    | Ok pair -> pair
    | Error `Wrong_organization -> Alcotest.fail "append rejected"
  in
  check_string "entry key" (Key.of_int 0) key0;
  Alcotest.(check (option string)) "read entry" (Some "first")
    (File.read file key0);
  File.apply_undo file change0;
  Alcotest.(check (option string)) "append undone" None (File.read file key0)

let test_file_snapshot_restore () =
  (* Snapshot + block snapshot must restore the file exactly, indices
     included — the basis of ROLLFORWARD archives. *)
  let store = make_store () in
  let file = File.create store accounts_def in
  let pay branch = Record.encode [ ("branch", branch); ("balance", "1") ] in
  for i = 0 to 30 do
    ignore (expect_ok (File.insert file (Key.of_int i) (pay (if i mod 2 = 0 then "SF" else "NY"))))
  done;
  let blocks = Store.snapshot store in
  let restore_metadata = File.snapshot file in
  (* Mutate heavily after the snapshot. *)
  for i = 0 to 30 do
    if i mod 3 = 0 then ignore (File.delete file (Key.of_int i))
    else ignore (File.update file (Key.of_int i) (pay "LA"))
  done;
  ignore (expect_ok (File.insert file (Key.of_int 99) (pay "SF")));
  (* Mount the archive. *)
  Store.restore store blocks;
  restore_metadata ();
  check_int "record count restored" 31 (File.count file);
  Alcotest.(check (option string)) "content restored" (Some "SF")
    (Option.bind (File.read file (Key.of_int 0)) (fun p -> Record.field p "branch"));
  Alcotest.(check (option string)) "post-snapshot insert gone" None
    (File.read file (Key.of_int 99));
  check_int "index restored" 16
    (List.length (File.lookup_index file ~index:"ACCT-BY-BRANCH" "SF"));
  expect_ok (File.check_invariants file)

(* Property: a random mutation history can be rolled back exactly by
   applying the collected before-images in reverse, and rolled forward
   again by the after-images — the contract audit-based backout and
   ROLLFORWARD redo rely on. *)
let prop_undo_redo_round_trip =
  QCheck.Test.make ~name:"undo reverses and redo replays any history" ~count:100
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_bound 15) (int_bound 2)))
    (fun ops ->
      let file = File.create (make_store ()) accounts_def in
      (* A non-empty starting population. *)
      for i = 0 to 7 do
        ignore
          (File.insert file (Key.of_int i)
             (Record.encode [ ("branch", "SF"); ("balance", "0") ]))
      done;
      let initial = ref [] in
      File.iter file (fun k p -> initial := (k, p) :: !initial);
      let serial = ref 0 in
      let changes =
        List.filter_map
          (fun (k, op) ->
            incr serial;
            let key = Key.of_int k in
            let payload =
              Record.encode
                [ ("branch", if k mod 2 = 0 then "SF" else "NY");
                  ("balance", string_of_int !serial) ]
            in
            match op with
            | 0 -> (
                match File.insert file key payload with
                | Ok change -> Some change
                | Error _ -> None)
            | 1 -> (
                match File.update file key payload with
                | Ok change -> Some change
                | Error _ -> None)
            | _ -> (
                match File.delete file key with
                | Ok change -> Some change
                | Error _ -> None))
          ops
      in
      let final = ref [] in
      File.iter file (fun k p -> final := (k, p) :: !final);
      (* Undo everything in reverse: exactly the initial state. *)
      List.iter (File.apply_undo file) (List.rev changes);
      let after_undo = ref [] in
      File.iter file (fun k p -> after_undo := (k, p) :: !after_undo);
      (* Redo everything in order: exactly the final state. *)
      List.iter (File.apply_redo file) changes;
      let after_redo = ref [] in
      File.iter file (fun k p -> after_redo := (k, p) :: !after_redo);
      (match File.check_invariants file with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "invariants: %s" m);
      !after_undo = !initial && !after_redo = !final)

(* ------------------------------------------------------------------ *)
(* Schema and partitioning *)

let test_schema_validation () =
  let p node low = { Schema.low_key = low; node; volume = "$D" } in
  Alcotest.check_raises "no partitions"
    (Invalid_argument "Schema.define: a file needs at least one partition")
    (fun () ->
      ignore
        (Schema.define ~name:"X" ~organization:Schema.Key_sequenced
           ~partitions:[] ()));
  Alcotest.check_raises "first not min"
    (Invalid_argument "Schema.define: first partition must start at the minimum key")
    (fun () ->
      ignore
        (Schema.define ~name:"X" ~organization:Schema.Key_sequenced
           ~partitions:[ p 1 "m" ] ()));
  Alcotest.check_raises "not ascending"
    (Invalid_argument "Schema.define: partition low keys must ascend")
    (fun () ->
      ignore
        (Schema.define ~name:"X" ~organization:Schema.Key_sequenced
           ~partitions:[ p 1 Key.min_key; p 2 "m"; p 3 "c" ] ()))

let test_partition_routing () =
  let p node low = { Schema.low_key = low; node; volume = "$D" } in
  let def =
    Schema.define ~name:"STOCK" ~organization:Schema.Key_sequenced
      ~partitions:[ p 1 Key.min_key; p 2 "h"; p 3 "p" ]
      ()
  in
  check_int "low key" 1 (Schema.partition_for def "apple").Schema.node;
  check_int "boundary inclusive" 2 (Schema.partition_for def "h").Schema.node;
  check_int "middle" 2 (Schema.partition_for def "m").Schema.node;
  check_int "high" 3 (Schema.partition_for def "zebra").Schema.node;
  check_int "index" 2 (Schema.partition_index def "q")

let prop_partition_routing_total =
  QCheck.Test.make ~name:"every key routes to exactly one partition" ~count:200
    QCheck.(pair (small_list (string_of_size (QCheck.Gen.return 3))) string)
    (fun (cuts, probe) ->
      let cuts =
        List.sort_uniq String.compare (List.filter (fun c -> c <> "") cuts)
      in
      let partitions =
        { Schema.low_key = Key.min_key; node = 0; volume = "$D" }
        :: List.mapi (fun i low -> { Schema.low_key = low; node = i + 1; volume = "$D" }) cuts
      in
      let def =
        Schema.define ~name:"F" ~organization:Schema.Key_sequenced ~partitions ()
      in
      let chosen = Schema.partition_for def probe in
      (* The chosen partition's low key is <= probe, and no later partition
         also satisfies that. *)
      Key.compare chosen.Schema.low_key probe <= 0
      && List.for_all
           (fun p ->
             Key.compare p.Schema.low_key probe > 0
             || Key.compare p.Schema.low_key chosen.Schema.low_key <= 0)
           partitions)

(* ------------------------------------------------------------------ *)
(* Query language (mini ENFORM) *)

let populated_accounts () =
  let file = File.create (make_store ()) accounts_def in
  List.iteri
    (fun i (branch, balance) ->
      ignore
        (expect_ok
           (File.insert file (Key.of_int i)
              (Record.encode
                 [ ("branch", branch); ("balance", string_of_int balance) ]))))
    [ ("SF", 100); ("NY", 2000); ("SF", 1500); ("LA", 50); ("SF", 800); ("NY", 300) ];
  file

let run_query text file =
  match Query.parse text with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok query -> (
      match Query.run query file with
      | Ok rows -> rows
      | Error m -> Alcotest.failf "run: %s" m)

let test_query_filter_and_sort () =
  let file = populated_accounts () in
  let rows =
    run_query "FIND ACCOUNTS WHERE branch = SF SORTED BY balance LIST balance" file
  in
  Alcotest.(check (list (list (pair string string))))
    "SF balances ascending"
    [ [ ("balance", "100") ]; [ ("balance", "800") ]; [ ("balance", "1500") ] ]
    (List.map (fun r -> r.Query.fields) rows)

let test_query_numeric_comparison () =
  let file = populated_accounts () in
  let rows = run_query "FIND ACCOUNTS WHERE balance >= 800 AND balance < 2000" file in
  check_int "two rows" 2 (List.length rows);
  let rows = run_query "FIND ACCOUNTS WHERE branch <> SF" file in
  check_int "non-SF rows" 3 (List.length rows)

let test_query_uses_index () =
  let file = populated_accounts () in
  (match Query.parse "FIND ACCOUNTS WHERE branch = NY" with
  | Ok query ->
      check_bool "equality on indexed field plans via index" true
        (Query.ran_via_index query file)
  | Error m -> Alcotest.fail m);
  (match Query.parse "FIND ACCOUNTS WHERE balance > 100" with
  | Ok query ->
      check_bool "range on unindexed field scans" false
        (Query.ran_via_index query file)
  | Error m -> Alcotest.fail m);
  (* Same answer either way. *)
  let via_index = run_query "FIND ACCOUNTS WHERE branch = NY" file in
  check_int "index result" 2 (List.length via_index)

let test_query_parse_errors () =
  (match Query.parse "SELECT * FROM ACCOUNTS" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-FIND accepted");
  (match Query.parse "FIND ACCOUNTS WHERE branch" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling WHERE accepted");
  (match Query.parse "FIND ACCOUNTS WHERE branch ~ SF" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad operator accepted");
  match Query.parse "FIND ACCOUNTS LIST" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty LIST accepted"

let test_query_wrong_file_rejected () =
  let file = populated_accounts () in
  match Query.parse "FIND OTHER WHERE branch = SF" with
  | Ok query -> (
      match Query.run query file with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "wrong file accepted")
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Compression *)

let test_front_coding () =
  let stats = Compression.front_code [| "account0001"; "account0002"; "account0100" |] in
  check_int "raw" 33 stats.Compression.raw_bytes;
  (* 11 + (1+1) + (1+3) = 17 *)
  check_int "compressed" 17 stats.Compression.compressed_bytes;
  check_bool "ratio < 1" true (Compression.ratio stats < 1.0);
  let none = Compression.front_code [||] in
  Alcotest.(check (float 0.0001)) "empty ratio" 1.0 (Compression.ratio none)

let test_btree_compression_stats () =
  let tree = make_tree ~degree:8 () in
  for i = 0 to 499 do
    expect_ok (Btree.insert tree (Key.of_int i) "x")
  done;
  let stats = Compression.btree_stats tree in
  check_bool "keys compress well" true (Compression.ratio stats < 0.5)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "tandem_db"
    [
      ( "record",
        [
          Alcotest.test_case "codec round trip" `Quick test_record_codec_round_trip;
          Alcotest.test_case "field ops" `Quick test_record_field_ops;
          Alcotest.test_case "nested encoding" `Quick test_record_nested_encoding;
          Alcotest.test_case "malformed rejected" `Quick test_record_malformed_rejected;
        ] );
      ( "store",
        [
          Alcotest.test_case "alloc read write" `Quick test_store_alloc_read_write;
          Alcotest.test_case "crash loses unflushed" `Quick test_store_crash_loses_unflushed;
          Alcotest.test_case "charging counts io" `Quick test_store_charging_counts_io;
          Alcotest.test_case "dirty eviction writes back" `Quick test_dirty_eviction_writes_back;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru policy" `Quick test_cache_lru_policy;
          Alcotest.test_case "dirty tracking" `Quick test_cache_dirty_tracking;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basic ops" `Quick test_btree_basic;
          Alcotest.test_case "splits" `Quick test_btree_many_inserts_split;
          Alcotest.test_case "range and order" `Quick test_btree_range_and_order;
          Alcotest.test_case "delete then scan" `Quick test_btree_delete_then_scan;
        ]
        @ qcheck [ prop_btree_matches_model; prop_btree_range_matches_model ] );
      ( "flat_files",
        [
          Alcotest.test_case "relative file" `Quick test_relative_file;
          Alcotest.test_case "entry file" `Quick test_entry_file;
        ] );
      ( "file",
        [
          Alcotest.test_case "secondary index maintenance" `Quick test_file_with_index;
          Alcotest.test_case "undo redo" `Quick test_file_undo_redo;
          Alcotest.test_case "entry append and undo" `Quick
            test_entry_organization_append_and_undo;
          Alcotest.test_case "snapshot restore" `Quick test_file_snapshot_restore;
        ]
        @ qcheck [ prop_undo_redo_round_trip ] );
      ( "schema",
        [
          Alcotest.test_case "validation" `Quick test_schema_validation;
          Alcotest.test_case "partition routing" `Quick test_partition_routing;
        ]
        @ qcheck [ prop_partition_routing_total ] );
      ( "query",
        [
          Alcotest.test_case "filter and sort" `Quick test_query_filter_and_sort;
          Alcotest.test_case "numeric comparison" `Quick test_query_numeric_comparison;
          Alcotest.test_case "index access path" `Quick test_query_uses_index;
          Alcotest.test_case "parse errors" `Quick test_query_parse_errors;
          Alcotest.test_case "wrong file rejected" `Quick test_query_wrong_file_rejected;
        ] );
      ( "compression",
        [
          Alcotest.test_case "front coding" `Quick test_front_coding;
          Alcotest.test_case "btree stats" `Quick test_btree_compression_stats;
        ] );
    ]
