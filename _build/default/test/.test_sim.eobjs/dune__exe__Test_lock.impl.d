test/test_lock.ml: Alcotest Engine Fiber List Lock_table Metrics Printf QCheck QCheck_alcotest Sim_time Tandem_lock Tandem_sim
