test/test_mfg.mli:
