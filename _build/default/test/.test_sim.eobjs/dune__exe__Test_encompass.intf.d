test/test_encompass.mli:
