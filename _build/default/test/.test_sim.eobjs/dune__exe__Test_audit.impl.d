test/test_audit.ml: Alcotest Audit_process Audit_record Audit_trail Engine Fiber List Metrics Monitor_trail Printf Sim_time Tandem_audit Tandem_disk Tandem_os Tandem_sim
