test/test_os.ml: Alcotest Array Cpu Engine Fiber Format Gen Hashtbl Hw_config List Message Metrics Net Node Option Process Process_pair QCheck QCheck_alcotest Rpc Sim_time Tandem_os Tandem_sim
