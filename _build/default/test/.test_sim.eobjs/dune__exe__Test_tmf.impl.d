test/test_tmf.ml: Alcotest Engine Fmt List Net Node Option Printf QCheck QCheck_alcotest Tandem_os Tandem_sim Tmf
