test/test_baseline.ml: Alcotest Engine Fiber Fmt Fun Key List Metrics Option Record Schema Sim_time Tandem_baseline Tandem_db Tandem_disk Tandem_sim Wal_tm
