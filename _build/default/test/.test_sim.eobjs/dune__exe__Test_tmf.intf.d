test/test_tmf.mli:
