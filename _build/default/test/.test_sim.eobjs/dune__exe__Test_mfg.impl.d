test/test_mfg.ml: Alcotest Engine List Mfg_app Net Node Printf Sim_time Tandem_encompass Tandem_mfg Tandem_os Tandem_sim
