test/test_sim.ml: Alcotest Array Engine Fiber Fiber_mutex Gen Heap Int List Metrics Option QCheck QCheck_alcotest Rng Sim_time Tandem_sim Trace
