(* Tests for the conventional WAL + halt/restart transaction manager. *)

open Tandem_sim
open Tandem_db
open Tandem_baseline

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let accounts_def =
  Schema.define ~name:"ACCOUNT" ~organization:Schema.Key_sequenced ~degree:8
    ~partitions:[ { Schema.low_key = Key.min_key; node = 1; volume = "$D" } ]
    ()

let make () =
  let engine = Engine.create () in
  let metrics = Metrics.create () in
  let volume name =
    Tandem_disk.Volume.create engine ~metrics ~name
      ~access_time:(Sim_time.milliseconds 25)
  in
  let tm =
    Wal_tm.create ~engine ~metrics ~data_volume:(volume "$DATA")
      ~log_volume:(volume "$LOG") ()
  in
  Wal_tm.add_file tm accounts_def;
  Wal_tm.load_file tm ~file:"ACCOUNT"
    (List.init 20 (fun i ->
         (Key.of_int i, Record.encode [ ("balance", "1000") ])));
  (engine, tm)

let balance tm account =
  List.assoc_opt (Key.of_int account) (Wal_tm.file_contents tm ~file:"ACCOUNT")
  |> Fun.flip Option.bind (fun payload -> Record.int_field payload "balance")

let transfer tm ~from_account ~to_account ~amount =
  match Wal_tm.begin_transaction tm with
  | Error `Unavailable -> `Unavailable
  | Ok tx -> (
      let add account delta =
        match Wal_tm.read tm tx ~file:"ACCOUNT" (Key.of_int account) with
        | Ok (Some payload) ->
            let current =
              Option.value ~default:0 (Record.int_field payload "balance")
            in
            Wal_tm.update tm tx ~file:"ACCOUNT" (Key.of_int account)
              (Record.set_field payload "balance" (string_of_int (current + delta)))
        | Ok None -> Error `Not_found
        | Error `Lock_timeout -> Error `Lock_timeout
        | Error `Halted -> Error `Halted
      in
      match add from_account (-amount) with
      | Error _ ->
          Wal_tm.abort tm tx;
          `Aborted
      | Ok () -> (
          match add to_account amount with
          | Error _ ->
              Wal_tm.abort tm tx;
              `Aborted
          | Ok () -> (
              match Wal_tm.commit tm tx with
              | Ok () -> `Committed
              | Error `Halted -> `Lost)))

let test_commit_and_abort () =
  let engine, tm = make () in
  let outcomes = ref [] in
  ignore
    (Fiber.spawn (fun () ->
         outcomes := transfer tm ~from_account:0 ~to_account:1 ~amount:100 :: !outcomes;
         (* A deliberate abort leaves no trace. *)
         (match Wal_tm.begin_transaction tm with
         | Ok tx ->
             (match
                Wal_tm.read tm tx ~file:"ACCOUNT" (Key.of_int 2)
              with
             | Ok (Some payload) ->
                 ignore
                   (Wal_tm.update tm tx ~file:"ACCOUNT" (Key.of_int 2)
                      (Record.set_field payload "balance" "0"))
             | _ -> ());
             Wal_tm.abort tm tx
         | Error `Unavailable -> Alcotest.fail "should be available")));
  Engine.run engine;
  Alcotest.(check (list (of_pp Fmt.nop))) "committed" [ `Committed ] !outcomes;
  Alcotest.(check (option int)) "debit" (Some 900) (balance tm 0);
  Alcotest.(check (option int)) "credit" (Some 1_100) (balance tm 1);
  Alcotest.(check (option int)) "abort undone" (Some 1_000) (balance tm 2)

let test_wal_forces_per_update () =
  let engine, tm = make () in
  ignore
    (Fiber.spawn (fun () ->
         ignore (transfer tm ~from_account:0 ~to_account:1 ~amount:10)));
  Engine.run engine;
  (* Two updates + one commit record = three forced log writes. *)
  check_int "forced writes" 3 (Wal_tm.forced_log_writes tm)

let test_crash_halts_and_restart_recovers () =
  let engine, tm = make () in
  ignore
    (Fiber.spawn (fun () ->
         ignore (transfer tm ~from_account:0 ~to_account:1 ~amount:100)));
  Engine.run engine;
  (* Open a transaction that will be in flight at the crash. *)
  let in_flight_outcome = ref None in
  ignore
    (Fiber.spawn (fun () ->
         in_flight_outcome :=
           Some (transfer tm ~from_account:2 ~to_account:3 ~amount:500)));
  (* Crash while that transfer is between its updates. *)
  ignore
    (Engine.schedule_after engine (Sim_time.milliseconds 60) (fun () ->
         Wal_tm.crash tm));
  Engine.run engine;
  check_bool "halted" false (Wal_tm.is_available tm);
  check_bool "in-flight lost or aborted" true
    (match !in_flight_outcome with
    | Some (`Committed) -> false
    | _ -> true);
  (* New work is refused while halted. *)
  (match Wal_tm.begin_transaction tm with
  | Error `Unavailable -> ()
  | Ok _ -> Alcotest.fail "accepted work while halted");
  (* Restart: committed work survives, the loser is gone. *)
  let recovered = ref false in
  Wal_tm.restart tm ~on_done:(fun () -> recovered := true);
  Engine.run engine;
  check_bool "recovered" true !recovered;
  check_bool "available again" true (Wal_tm.is_available tm);
  Alcotest.(check (option int)) "winner redone (debit)" (Some 900) (balance tm 0);
  Alcotest.(check (option int)) "winner redone (credit)" (Some 1_100) (balance tm 1);
  Alcotest.(check (option int)) "loser gone" (Some 1_000) (balance tm 2);
  Alcotest.(check (option int)) "loser gone (other leg)" (Some 1_000) (balance tm 3);
  check_bool "outage accounted" true (Wal_tm.unavailable_total tm >= Sim_time.seconds 5)

let test_control_point_bounds_restart () =
  let engine, tm = make () in
  ignore
    (Fiber.spawn (fun () ->
         for _ = 1 to 30 do
           ignore (transfer tm ~from_account:0 ~to_account:1 ~amount:1)
         done;
         Alcotest.(check bool) "control point taken" true (Wal_tm.control_point tm);
         for _ = 1 to 5 do
           ignore (transfer tm ~from_account:2 ~to_account:3 ~amount:1)
         done));
  Engine.run engine;
  Wal_tm.crash tm;
  let start = Engine.now engine in
  Wal_tm.restart tm ~on_done:(fun () -> ());
  Engine.run engine;
  let with_cp = Sim_time.diff (Engine.now engine) start in
  (* Correctness: all 35 transfers survive. *)
  Alcotest.(check (option int)) "pre-cp work survives" (Some 970) (balance tm 0);
  Alcotest.(check (option int)) "post-cp work survives" (Some 995) (balance tm 2);
  (* A run with the same work but no control point restarts slower. *)
  let engine2, tm2 = make () in
  ignore
    (Fiber.spawn (fun () ->
         for _ = 1 to 35 do
           ignore (transfer tm2 ~from_account:0 ~to_account:1 ~amount:1)
         done));
  Engine.run engine2;
  Wal_tm.crash tm2;
  let start2 = Engine.now engine2 in
  Wal_tm.restart tm2 ~on_done:(fun () -> ());
  Engine.run engine2;
  let without_cp = Sim_time.diff (Engine.now engine2) start2 in
  Alcotest.(check bool) "control point shortens restart" true (with_cp < without_cp)

let test_control_point_refused_mid_transaction () =
  let engine, tm = make () in
  ignore
    (Fiber.spawn (fun () ->
         match Wal_tm.begin_transaction tm with
         | Error `Unavailable -> Alcotest.fail "unavailable"
         | Ok tx ->
             Alcotest.(check bool) "refused while live" false (Wal_tm.control_point tm);
             Wal_tm.abort tm tx;
             Alcotest.(check bool) "allowed at quiescence" true (Wal_tm.control_point tm)));
  Engine.run engine

let test_restart_time_grows_with_log () =
  let run transactions =
    let engine, tm = make () in
    ignore
      (Fiber.spawn (fun () ->
           for i = 0 to transactions - 1 do
             ignore
               (transfer tm
                  ~from_account:(i mod 10)
                  ~to_account:(10 + (i mod 10))
                  ~amount:1)
           done));
    Engine.run engine;
    Wal_tm.crash tm;
    let start = Engine.now engine in
    Wal_tm.restart tm ~on_done:(fun () -> ());
    Engine.run engine;
    Sim_time.diff (Engine.now engine) start
  in
  let short = run 5 and long = run 60 in
  check_bool "longer log, longer restart" true (long > short)

let () =
  Alcotest.run "tandem_baseline"
    [
      ( "wal_tm",
        [
          Alcotest.test_case "commit and abort" `Quick test_commit_and_abort;
          Alcotest.test_case "wal forces per update" `Quick test_wal_forces_per_update;
          Alcotest.test_case "crash halts, restart recovers" `Quick
            test_crash_halts_and_restart_recovers;
          Alcotest.test_case "restart time grows with log" `Quick
            test_restart_time_grows_with_log;
          Alcotest.test_case "control point bounds restart" `Quick
            test_control_point_bounds_restart;
          Alcotest.test_case "control point needs quiescence" `Quick
            test_control_point_refused_mid_transaction;
        ] );
    ]
