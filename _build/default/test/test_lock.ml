(* Tests for the decentralized per-volume lock table. *)

open Tandem_sim
open Tandem_lock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let make () =
  let engine = Engine.create () in
  let metrics = Metrics.create () in
  (engine, Lock_table.create engine ~metrics ~name:"$DATA")

let record file key = Lock_table.Record_lock { file; key }

let timeout = Sim_time.seconds 1

let test_grant_and_conflict () =
  let engine, locks = make () in
  let results = ref [] in
  (* Bind the acquire result before touching the log: the fiber may suspend
     inside acquire, and a stale dereference of the log would lose entries
     appended meanwhile. *)
  let note name result = results := (name, result) :: !results in
  ignore
    (Fiber.spawn (fun () ->
         let r = Lock_table.acquire locks ~owner:"t1" ~timeout (record "F" "a") in
         note "t1" r));
  ignore
    (Fiber.spawn (fun () ->
         let r = Lock_table.acquire locks ~owner:"t2" ~timeout (record "F" "a") in
         note "t2" r));
  Engine.run engine;
  (* t1 granted instantly; t2 timed out after 1s (never released). *)
  (match List.assoc "t1" !results with
  | `Granted -> ()
  | `Timeout -> Alcotest.fail "t1 should be granted");
  (match List.assoc "t2" !results with
  | `Timeout -> ()
  | `Granted -> Alcotest.fail "t2 should time out");
  check_int "one lock held" 1 (Lock_table.locked_count locks);
  check_bool "t1 still holds" true (Lock_table.holds locks ~owner:"t1" (record "F" "a"))

let test_release_wakes_waiter () =
  let engine, locks = make () in
  let t2_result = ref None in
  ignore
    (Fiber.spawn (fun () ->
         ignore (Lock_table.acquire locks ~owner:"t1" ~timeout (record "F" "a"));
         Fiber.sleep engine (Sim_time.milliseconds 100);
         Lock_table.release_all locks ~owner:"t1"));
  ignore
    (Fiber.spawn (fun () ->
         t2_result :=
           Some (Lock_table.acquire locks ~owner:"t2" ~timeout (record "F" "a"))));
  Engine.run engine;
  (match !t2_result with
  | Some `Granted -> ()
  | _ -> Alcotest.fail "t2 should be granted after release");
  check_bool "t2 holds now" true (Lock_table.holds locks ~owner:"t2" (record "F" "a"));
  check_bool "wait took the release delay" true
    (Engine.now engine >= Sim_time.milliseconds 100)

let test_reacquire_is_noop () =
  let engine, locks = make () in
  ignore
    (Fiber.spawn (fun () ->
         (match Lock_table.acquire locks ~owner:"t1" ~timeout (record "F" "a") with
         | `Granted -> ()
         | `Timeout -> Alcotest.fail "first acquire");
         match Lock_table.acquire locks ~owner:"t1" ~timeout (record "F" "a") with
         | `Granted -> ()
         | `Timeout -> Alcotest.fail "reacquire should be immediate"));
  Engine.run engine;
  check_int "one lock entry" 1 (Lock_table.locked_count locks)

let test_file_lock_hierarchy () =
  let engine, locks = make () in
  let log = ref [] in
  let note name result = log := (name, result) :: !log in
  ignore
    (Fiber.spawn (fun () ->
         let r = Lock_table.acquire locks ~owner:"t1" ~timeout (record "F" "a") in
         note "t1-rec" r));
  ignore
    (Fiber.spawn (fun () ->
         let r = Lock_table.acquire locks ~owner:"t2" ~timeout (Lock_table.File_lock "F") in
         note "t2-file" r));
  ignore
    (Fiber.spawn (fun () ->
         let r = Lock_table.acquire locks ~owner:"t2" ~timeout (record "G" "x") in
         note "t2-other" r));
  Engine.run engine;
  (match List.assoc "t1-rec" !log with
  | `Granted -> ()
  | `Timeout -> Alcotest.fail "record lock");
  (* File lock conflicts with another owner's record lock in that file. *)
  (match List.assoc "t2-file" !log with
  | `Timeout -> ()
  | `Granted -> Alcotest.fail "file lock should conflict");
  (* A different file is unaffected. *)
  match List.assoc "t2-other" !log with
  | `Granted -> ()
  | `Timeout -> Alcotest.fail "other file should be free"

let test_file_lock_blocks_records () =
  let engine, locks = make () in
  let t2 = ref None in
  ignore
    (Fiber.spawn (fun () ->
         ignore (Lock_table.acquire locks ~owner:"t1" ~timeout (Lock_table.File_lock "F"));
         (* The file-lock holder's own record access is implied. *)
         match Lock_table.acquire locks ~owner:"t1" ~timeout (record "F" "k") with
         | `Granted -> ()
         | `Timeout -> Alcotest.fail "own record under file lock"));
  ignore
    (Fiber.spawn (fun () ->
         t2 := Some (Lock_table.acquire locks ~owner:"t2" ~timeout (record "F" "k"))));
  Engine.run engine;
  match !t2 with
  | Some `Timeout -> ()
  | _ -> Alcotest.fail "record under foreign file lock should block"

let test_release_all_releases_everything () =
  let engine, locks = make () in
  ignore
    (Fiber.spawn (fun () ->
         ignore (Lock_table.acquire locks ~owner:"t1" ~timeout (record "F" "a"));
         ignore (Lock_table.acquire locks ~owner:"t1" ~timeout (record "F" "b"));
         ignore (Lock_table.acquire locks ~owner:"t1" ~timeout (Lock_table.File_lock "G"))));
  Engine.run engine;
  check_int "three locks" 3 (Lock_table.locked_count locks);
  check_int "t1 owns three" 3 (List.length (Lock_table.locks_of locks ~owner:"t1"));
  Lock_table.release_all locks ~owner:"t1";
  check_int "empty" 0 (Lock_table.locked_count locks);
  check_bool "holder gone" true (Lock_table.holder locks (record "F" "a") = None)

let test_fifo_wake_order () =
  let engine, locks = make () in
  let order = ref [] in
  ignore
    (Fiber.spawn (fun () ->
         ignore (Lock_table.acquire locks ~owner:"t1" ~timeout (record "F" "a"))));
  let waiter name delay =
    ignore
      (Fiber.spawn (fun () ->
           Fiber.sleep engine delay;
           match
             Lock_table.acquire locks ~owner:name ~timeout:(Sim_time.seconds 10)
               (record "F" "a")
           with
           | `Granted ->
               order := name :: !order;
               Lock_table.release_all locks ~owner:name
           | `Timeout -> Alcotest.fail "waiter timed out"))
  in
  waiter "t2" (Sim_time.milliseconds 1);
  waiter "t3" (Sim_time.milliseconds 2);
  ignore
    (Engine.schedule_at engine (Sim_time.milliseconds 50) (fun () ->
         Lock_table.release_all locks ~owner:"t1"));
  Engine.run engine;
  Alcotest.(check (list string)) "fifo order" [ "t2"; "t3" ] (List.rev !order)

let test_deadlock_resolved_by_timeout () =
  (* Classic crossing order: t1 takes a then b; t2 takes b then a. *)
  let engine, locks = make () in
  let outcomes = ref [] in
  let tx name first second =
    ignore
      (Fiber.spawn (fun () ->
           (match
              Lock_table.acquire locks ~owner:name ~timeout (record "F" first)
            with
           | `Granted -> ()
           | `Timeout -> Alcotest.fail "first lock should be granted");
           Fiber.sleep engine (Sim_time.milliseconds 10);
           let result =
             Lock_table.acquire locks ~owner:name ~timeout (record "F" second)
           in
           outcomes := (name, result) :: !outcomes;
           (* A timed-out transaction restarts: release everything. *)
           match result with
           | `Timeout -> Lock_table.release_all locks ~owner:name
           | `Granted -> ()))
  in
  tx "t1" "a" "b";
  tx "t2" "b" "a";
  Engine.run engine;
  let timeouts =
    List.length (List.filter (fun (_, r) -> r = `Timeout) !outcomes)
  in
  (* At least one of the two must break the deadlock by timeout, and the
     other then proceeds. *)
  check_bool "deadlock broken" true (timeouts >= 1);
  check_bool "progress made" true
    (List.exists (fun (_, r) -> r = `Granted) !outcomes
    || timeouts = 2)

let test_reset_drops_everything () =
  let engine, locks = make () in
  ignore
    (Fiber.spawn (fun () ->
         ignore (Lock_table.acquire locks ~owner:"t1" ~timeout (record "F" "a"))));
  Engine.run engine;
  Lock_table.reset locks;
  check_int "no locks" 0 (Lock_table.locked_count locks);
  check_int "no waiters" 0 (Lock_table.waiting_count locks)

let prop_exclusivity =
  QCheck.Test.make ~name:"no two owners ever hold the same record" ~count:60
    QCheck.(list (pair (int_bound 4) (int_bound 5)))
    (fun requests ->
      let engine, locks = make () in
      let violation = ref false in
      List.iteri
        (fun i (owner_index, key_index) ->
          let owner = Printf.sprintf "t%d" owner_index in
          let key = Printf.sprintf "k%d" key_index in
          ignore
            (Fiber.spawn (fun () ->
                 Fiber.sleep engine (Sim_time.milliseconds i);
                 match
                   Lock_table.acquire locks ~owner
                     ~timeout:(Sim_time.milliseconds 50) (record "F" key)
                 with
                 | `Granted ->
                     (match Lock_table.holder locks (record "F" key) with
                     | Some h when h <> owner -> violation := true
                     | Some _ -> ()
                     | None -> violation := true);
                     Fiber.sleep engine (Sim_time.milliseconds 20);
                     Lock_table.release_all locks ~owner
                 | `Timeout -> ())))
        requests;
      Engine.run engine;
      (not !violation) && Lock_table.locked_count locks = 0)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "tandem_lock"
    [
      ( "lock_table",
        [
          Alcotest.test_case "grant and conflict" `Quick test_grant_and_conflict;
          Alcotest.test_case "release wakes waiter" `Quick test_release_wakes_waiter;
          Alcotest.test_case "reacquire is noop" `Quick test_reacquire_is_noop;
          Alcotest.test_case "file lock hierarchy" `Quick test_file_lock_hierarchy;
          Alcotest.test_case "file lock blocks records" `Quick test_file_lock_blocks_records;
          Alcotest.test_case "release all" `Quick test_release_all_releases_everything;
          Alcotest.test_case "fifo wake order" `Quick test_fifo_wake_order;
          Alcotest.test_case "deadlock by timeout" `Quick test_deadlock_resolved_by_timeout;
          Alcotest.test_case "reset" `Quick test_reset_drops_everything;
        ]
        @ qcheck [ prop_exclusivity ] );
    ]
