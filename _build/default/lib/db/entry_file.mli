(** Entry-sequenced files: append-only records addressed by entry number,
    the organization used for history/journal files. *)

type t

val create : Store.t -> name:string -> entries_per_segment:int -> t

val name : t -> string

val append : t -> string -> int
(** Append a record; returns its entry number (dense from 0). *)

val read_entry : t -> int -> string option

val count : t -> int

val iter_from : t -> int -> (int -> string -> unit) -> unit
(** Visit entries from the given number upward. *)

val snapshot : t -> unit -> unit
(** Capture file metadata (segment list, count) for archiving; the thunk
    restores it. *)
