type t = { index_name : string; indexed_field : string; tree : Btree.t }

(* Composite key: alternate key, 0x00, primary key. Alternate keys that
   contain 0x00 would break the encoding, so they are rejected. *)
let composite alt primary =
  if String.contains alt '\x00' then
    invalid_arg "Secondary_index: alternate key contains NUL";
  alt ^ "\x00" ^ primary

let create store ~name ~field ~degree =
  {
    index_name = name;
    indexed_field = field;
    tree = Btree.create store ~name ~degree;
  }

let name t = t.index_name

let field t = t.indexed_field

let alternate_key t payload = Record.field payload t.indexed_field

let insert_entry t ~primary ~payload =
  match alternate_key t payload with
  | None -> ()
  | Some alt -> (
      match Btree.insert t.tree (composite alt primary) primary with
      | Ok () -> ()
      | Error `Duplicate -> ())

let delete_entry t ~primary ~payload =
  match alternate_key t payload with
  | None -> ()
  | Some alt -> ignore (Btree.delete t.tree (composite alt primary))

let update_entry t ~primary ~before ~after =
  let old_alt = alternate_key t before and new_alt = alternate_key t after in
  if old_alt <> new_alt then begin
    (match old_alt with
    | Some alt -> ignore (Btree.delete t.tree (composite alt primary))
    | None -> ());
    match new_alt with
    | Some alt -> ignore (Btree.insert t.tree (composite alt primary) primary)
    | None -> ()
  end

let lookup t alt =
  if String.contains alt '\x00' then
    invalid_arg "Secondary_index.lookup: alternate key contains NUL";
  let prefix = alt ^ "\x00" in
  let has_prefix k =
    String.length k >= String.length prefix
    && String.equal (String.sub k 0 (String.length prefix)) prefix
  in
  (* Every composite for [alt] sorts strictly after the bare string [alt]
     and carries [prefix]; walk the ordered chain until the prefix ends. *)
  let rec collect key acc =
    match Btree.next_after t.tree key with
    | Some (k, primary) when has_prefix k -> collect k (primary :: acc)
    | Some _ | None -> List.rev acc
  in
  collect alt []

let entry_count t = Btree.count t.tree

let snapshot t = Btree.snapshot t.tree
