(** Data and index compression accounting.

    ENCOMPASS front-compresses keys within blocks (each key stores only the
    bytes that differ from its predecessor). The simulation keeps blocks
    uncompressed in memory but computes the exact savings front-coding would
    achieve, which is what the compression experiment reports. *)

type stats = {
  raw_bytes : int;
  compressed_bytes : int;
}

val ratio : stats -> float
(** [compressed / raw]; [1.0] for empty input. *)

val front_code : Key.t array -> stats
(** Savings of front-coding a sorted key array: each key after the first
    costs one prefix-length byte plus its distinct suffix. *)

val btree_stats : Btree.t -> stats
(** Aggregate front-coding savings over every leaf block's keys. *)

val pp : Format.formatter -> stats -> unit
