type t = {
  store : Store.t;
  tree_name : string;
  degree : int;
  mutable root : int;
  mutable record_count : int;
}

type leaf = { keys : Key.t array; payloads : string array; next_leaf : int option }

type internal = { separators : Key.t array; children : int array }

type node = Leaf of leaf | Internal of internal

let max_keys t = (2 * t.degree) - 1

let read_node t block =
  match Store.read t.store block with
  | Block_content.Btree_leaf { keys; payloads; next_leaf } ->
      Leaf { keys; payloads; next_leaf }
  | Block_content.Btree_internal { separators; children } ->
      Internal { separators; children }
  | Block_content.Relative_segment _ | Block_content.Entry_segment _ ->
      invalid_arg "Btree.read_node: foreign block"

let leaf_content { keys; payloads; next_leaf } =
  Block_content.Btree_leaf { keys; payloads; next_leaf }

let internal_content { separators; children } =
  Block_content.Btree_internal { separators; children }

let create store ~name ~degree =
  if degree < 2 then invalid_arg "Btree.create: degree must be >= 2";
  let root =
    Store.alloc store
      (leaf_content { keys = [||]; payloads = [||]; next_leaf = None })
  in
  { store; tree_name = name; degree; root; record_count = 0 }

let name t = t.tree_name

let count t = t.record_count

(* First index with arr.(i) >= key; Array.length arr when none. *)
let lower_bound arr key =
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if Key.compare arr.(mid) key < 0 then search (mid + 1) hi
      else search lo mid
    end
  in
  search 0 (Array.length arr)

(* Child index for a key: separators.(i) <= key routes right of i. *)
let child_index separators key =
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if Key.compare separators.(mid) key <= 0 then search (mid + 1) hi
      else search lo mid
    end
  in
  search 0 (Array.length separators)

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j ->
      if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

let height t =
  let rec descend block levels =
    match read_node t block with
    | Leaf _ -> levels
    | Internal { children; _ } -> descend children.(0) (levels + 1)
  in
  descend t.root 1

(* ------------------------------------------------------------------ *)
(* Insert *)

type split = No_split | Split of Key.t * int

let split_leaf t leaf =
  let n = Array.length leaf.keys in
  let half = n / 2 in
  let right =
    {
      keys = Array.sub leaf.keys half (n - half);
      payloads = Array.sub leaf.payloads half (n - half);
      next_leaf = leaf.next_leaf;
    }
  in
  let right_block = Store.alloc t.store (leaf_content right) in
  let left =
    {
      keys = Array.sub leaf.keys 0 half;
      payloads = Array.sub leaf.payloads 0 half;
      next_leaf = Some right_block;
    }
  in
  (left, right.keys.(0), right_block)

let split_internal t node =
  let n = Array.length node.separators in
  let mid = n / 2 in
  let right =
    {
      separators = Array.sub node.separators (mid + 1) (n - mid - 1);
      children = Array.sub node.children (mid + 1) (n - mid);
    }
  in
  let right_block = Store.alloc t.store (internal_content right) in
  let left =
    {
      separators = Array.sub node.separators 0 mid;
      children = Array.sub node.children 0 (mid + 1);
    }
  in
  (left, node.separators.(mid), right_block)

exception Duplicate_key

let insert t key payload =
  let rec insert_into block =
    match read_node t block with
    | Leaf leaf ->
        let i = lower_bound leaf.keys key in
        if i < Array.length leaf.keys && Key.equal leaf.keys.(i) key then
          raise Duplicate_key;
        let grown =
          {
            leaf with
            keys = array_insert leaf.keys i key;
            payloads = array_insert leaf.payloads i payload;
          }
        in
        if Array.length grown.keys <= max_keys t then begin
          Store.write t.store block (leaf_content grown);
          No_split
        end
        else begin
          let left, sep, right_block = split_leaf t grown in
          Store.write t.store block (leaf_content left);
          Split (sep, right_block)
        end
    | Internal node -> (
        let i = child_index node.separators key in
        match insert_into node.children.(i) with
        | No_split -> No_split
        | Split (sep, right_block) ->
            let grown =
              {
                separators = array_insert node.separators i sep;
                children = array_insert node.children (i + 1) right_block;
              }
            in
            if Array.length grown.separators <= max_keys t then begin
              Store.write t.store block (internal_content grown);
              No_split
            end
            else begin
              let left, up_sep, new_right = split_internal t grown in
              Store.write t.store block (internal_content left);
              Split (up_sep, new_right)
            end)
  in
  match insert_into t.root with
  | No_split ->
      t.record_count <- t.record_count + 1;
      Ok ()
  | Split (sep, right_block) ->
      (* Grow at the top: move the old root aside under a fresh root. *)
      let new_root =
        internal_content
          { separators = [| sep |]; children = [| t.root; right_block |] }
      in
      t.root <- Store.alloc t.store new_root;
      t.record_count <- t.record_count + 1;
      Ok ()
  | exception Duplicate_key -> Error `Duplicate

(* ------------------------------------------------------------------ *)
(* Point access *)

let rec find_leaf t block key =
  match read_node t block with
  | Leaf leaf -> (block, leaf)
  | Internal node ->
      find_leaf t node.children.(child_index node.separators key) key

let find t key =
  let _, leaf = find_leaf t t.root key in
  let i = lower_bound leaf.keys key in
  if i < Array.length leaf.keys && Key.equal leaf.keys.(i) key then
    Some leaf.payloads.(i)
  else None

let update t key payload =
  let block, leaf = find_leaf t t.root key in
  let i = lower_bound leaf.keys key in
  if i < Array.length leaf.keys && Key.equal leaf.keys.(i) key then begin
    let before = leaf.payloads.(i) in
    let payloads = Array.copy leaf.payloads in
    payloads.(i) <- payload;
    Store.write t.store block (leaf_content { leaf with payloads });
    Ok before
  end
  else Error `Not_found

let delete t key =
  let block, leaf = find_leaf t t.root key in
  let i = lower_bound leaf.keys key in
  if i < Array.length leaf.keys && Key.equal leaf.keys.(i) key then begin
    let before = leaf.payloads.(i) in
    let shrunk =
      {
        leaf with
        keys = array_remove leaf.keys i;
        payloads = array_remove leaf.payloads i;
      }
    in
    Store.write t.store block (leaf_content shrunk);
    t.record_count <- t.record_count - 1;
    Ok before
  end
  else Error `Not_found

(* ------------------------------------------------------------------ *)
(* Sequential access *)

let rec first_in_chain t leaf after =
  (* First (key, payload) strictly greater than [after] in this leaf or its
     successors; skips leaves emptied by deletes. *)
  let i = lower_bound leaf.keys after in
  let i =
    if i < Array.length leaf.keys && Key.equal leaf.keys.(i) after then i + 1
    else i
  in
  if i < Array.length leaf.keys then Some (leaf.keys.(i), leaf.payloads.(i))
  else
    match leaf.next_leaf with
    | None -> None
    | Some next -> (
        match read_node t next with
        | Leaf next_leaf -> first_in_chain t next_leaf after
        | Internal _ -> invalid_arg "Btree: corrupt sibling link")

let next_after t key =
  let _, leaf = find_leaf t t.root key in
  first_in_chain t leaf key

let range t ~lo ~hi =
  if Key.compare lo hi > 0 then []
  else begin
    let _, leaf = find_leaf t t.root lo in
    let rec collect leaf acc =
      let stop = ref None in
      let acc = ref acc in
      (try
         Array.iteri
           (fun i key ->
             if Key.compare key lo >= 0 then
               if Key.compare key hi <= 0 then
                 acc := (key, leaf.payloads.(i)) :: !acc
               else begin
                 stop := Some ();
                 raise Exit
               end)
           leaf.keys
       with Exit -> ());
      match (!stop, leaf.next_leaf) with
      | Some (), _ | None, None -> List.rev !acc
      | None, Some next -> (
          match read_node t next with
          | Leaf next_leaf -> collect next_leaf !acc
          | Internal _ -> invalid_arg "Btree: corrupt sibling link")
    in
    collect leaf []
  end

let iter t visit =
  let rec leftmost block =
    match read_node t block with
    | Leaf leaf -> leaf
    | Internal node -> leftmost node.children.(0)
  in
  let rec walk leaf =
    Array.iteri (fun i key -> visit key leaf.payloads.(i)) leaf.keys;
    match leaf.next_leaf with
    | None -> ()
    | Some next -> (
        match read_node t next with
        | Leaf next_leaf -> walk next_leaf
        | Internal _ -> invalid_arg "Btree: corrupt sibling link")
  in
  walk (leftmost t.root)

let to_alist t =
  let items = ref [] in
  iter t (fun key payload -> items := (key, payload) :: !items);
  List.rev !items

let leaf_blocks t =
  let rec leftmost block =
    match read_node t block with
    | Leaf leaf -> leaf
    | Internal node -> leftmost node.children.(0)
  in
  let rec walk leaf acc =
    match leaf.next_leaf with
    | None -> acc
    | Some next -> (
        match read_node t next with
        | Leaf next_leaf -> walk next_leaf (acc + 1)
        | Internal _ -> invalid_arg "Btree: corrupt sibling link")
  in
  walk (leftmost t.root) 1

(* ------------------------------------------------------------------ *)
(* Structural audit *)

let check_invariants t =
  let failure = ref None in
  let fail fmt =
    Format.kasprintf
      (fun message -> if !failure = None then failure := Some message)
      fmt
  in
  let check_sorted what keys lo hi =
    Array.iteri
      (fun i key ->
        if i > 0 && Key.compare keys.(i - 1) key >= 0 then
          fail "%s: keys out of order at %d" what i;
        (match lo with
        | Some l when Key.compare key l < 0 ->
            fail "%s: key %a below bound %a" what Key.pp key Key.pp l
        | _ -> ());
        match hi with
        | Some h when Key.compare key h >= 0 ->
            fail "%s: key %a above bound %a" what Key.pp key Key.pp h
        | _ -> ())
      keys
  in
  let counted = ref 0 in
  let rec check block lo hi depth =
    match read_node t block with
    | Leaf leaf ->
        if Array.length leaf.keys <> Array.length leaf.payloads then
          fail "leaf %d: key/payload arity mismatch" block;
        if Array.length leaf.keys > max_keys t then
          fail "leaf %d: overfull" block;
        check_sorted (Printf.sprintf "leaf %d" block) leaf.keys lo hi;
        counted := !counted + Array.length leaf.keys;
        depth
    | Internal node ->
        let n = Array.length node.separators in
        if Array.length node.children <> n + 1 then
          fail "internal %d: arity mismatch" block;
        if n > max_keys t then fail "internal %d: overfull" block;
        if n = 0 then fail "internal %d: empty separator set" block;
        check_sorted (Printf.sprintf "internal %d" block) node.separators lo hi;
        let depths =
          List.init (n + 1) (fun i ->
              let child_lo = if i = 0 then lo else Some node.separators.(i - 1) in
              let child_hi = if i = n then hi else Some node.separators.(i) in
              check node.children.(i) child_lo child_hi (depth + 1))
        in
        (match depths with
        | first :: rest ->
            if List.exists (fun d -> d <> first) rest then
              fail "internal %d: non-uniform depth" block;
            first
        | [] -> depth)
  in
  ignore (check t.root None None 1);
  if !counted <> t.record_count then
    fail "record count %d but found %d" t.record_count !counted;
  (* Sibling chain must enumerate the same records in order. *)
  let chain = to_alist t in
  if List.length chain <> !counted then
    fail "sibling chain has %d records, tree has %d" (List.length chain)
      !counted;
  let rec ordered = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if Key.compare a b >= 0 then fail "sibling chain out of order";
        ordered rest
    | _ -> ()
  in
  ordered chain;
  match !failure with None -> Ok () | Some message -> Error message

let snapshot t =
  let root = t.root and record_count = t.record_count in
  fun () ->
    t.root <- root;
    t.record_count <- record_count
