type organization_impl =
  | Key_seq of Btree.t
  | Rel of Relative_file.t
  | Entry of { slots : Relative_file.t; mutable next_entry : int }

type t = {
  definition : Schema.file_def;
  impl : organization_impl;
  indices : Secondary_index.t list;
}

type change = {
  file : string;
  key : Key.t;
  before : string option;
  after : string option;
}

let pp_change formatter { file; key; before; after } =
  let image = function None -> "-" | Some payload -> payload in
  Format.fprintf formatter "%s[%a]: %s -> %s" file Key.pp key (image before)
    (image after)

let create store (definition : Schema.file_def) =
  let impl =
    match definition.Schema.organization with
    | Schema.Key_sequenced ->
        Key_seq
          (Btree.create store ~name:definition.Schema.file_name
             ~degree:definition.Schema.degree)
    | Schema.Relative ->
        Rel
          (Relative_file.create store ~name:definition.Schema.file_name
             ~slots_per_segment:definition.Schema.degree)
    | Schema.Entry_sequenced ->
        Entry
          {
            slots =
              Relative_file.create store ~name:definition.Schema.file_name
                ~slots_per_segment:definition.Schema.degree;
            next_entry = 0;
          }
  in
  let indices =
    List.map
      (fun { Schema.index_name; on_field } ->
        Secondary_index.create store ~name:index_name ~field:on_field
          ~degree:definition.Schema.degree)
      definition.Schema.indices
  in
  { definition; impl; indices }

let def t = t.definition

let file_name t = t.definition.Schema.file_name

let slot_of_key key =
  match Key.to_int key with
  | Some slot when slot >= 0 -> Some slot
  | Some _ | None -> None

let read t key =
  match t.impl with
  | Key_seq tree -> Btree.find tree key
  | Rel file | Entry { slots = file; _ } -> (
      match slot_of_key key with
      | Some slot -> Relative_file.read_slot file slot
      | None -> None)

let index_insert t key payload =
  List.iter
    (fun index -> Secondary_index.insert_entry index ~primary:key ~payload)
    t.indices

let index_delete t key payload =
  List.iter
    (fun index -> Secondary_index.delete_entry index ~primary:key ~payload)
    t.indices

let index_update t key before after =
  List.iter
    (fun index -> Secondary_index.update_entry index ~primary:key ~before ~after)
    t.indices

let change t key before after = { file = file_name t; key; before; after }

let insert t key payload =
  match t.impl with
  | Key_seq tree -> (
      match Btree.insert tree key payload with
      | Ok () ->
          index_insert t key payload;
          Ok (change t key None (Some payload))
      | Error `Duplicate -> Error `Duplicate)
  | Rel file -> (
      match slot_of_key key with
      | None -> Error `Bad_key
      | Some slot -> (
          match Relative_file.read_slot file slot with
          | Some _ -> Error `Duplicate
          | None ->
              ignore (Relative_file.write_slot file slot payload);
              Ok (change t key None (Some payload))))
  | Entry _ -> Error `Bad_key

let append t payload =
  match t.impl with
  | Entry entry ->
      let number = entry.next_entry in
      entry.next_entry <- number + 1;
      ignore (Relative_file.write_slot entry.slots number payload);
      let key = Key.of_int number in
      Ok (key, change t key None (Some payload))
  | Key_seq _ | Rel _ -> Error `Wrong_organization

let update t key payload =
  match t.impl with
  | Key_seq tree -> (
      match Btree.update tree key payload with
      | Ok before ->
          index_update t key before payload;
          Ok (change t key (Some before) (Some payload))
      | Error `Not_found -> Error `Not_found)
  | Rel file | Entry { slots = file; _ } -> (
      match slot_of_key key with
      | None -> Error `Bad_key
      | Some slot -> (
          match Relative_file.read_slot file slot with
          | None -> Error `Not_found
          | Some before ->
              ignore (Relative_file.write_slot file slot payload);
              Ok (change t key (Some before) (Some payload))))

let delete t key =
  match t.impl with
  | Key_seq tree -> (
      match Btree.delete tree key with
      | Ok before ->
          index_delete t key before;
          Ok (change t key (Some before) None)
      | Error `Not_found -> Error `Not_found)
  | Rel file | Entry { slots = file; _ } -> (
      match slot_of_key key with
      | None -> Error `Bad_key
      | Some slot -> (
          match Relative_file.delete_slot file slot with
          | None -> Error `Not_found
          | Some before -> Ok (change t key (Some before) None)))

(* Impose a target image (Some payload / None) for a key, whatever the
   current state — shared by undo and redo, which makes both idempotent. *)
let impose t key target =
  let current = read t key in
  if current = target then ()
  else begin
    match t.impl with
    | Key_seq tree -> (
        match (current, target) with
        | None, Some payload ->
            (match Btree.insert tree key payload with
            | Ok () -> index_insert t key payload
            | Error `Duplicate -> assert false)
        | Some before, Some payload ->
            (match Btree.update tree key payload with
            | Ok _ -> index_update t key before payload
            | Error `Not_found -> assert false)
        | Some before, None ->
            (match Btree.delete tree key with
            | Ok _ -> index_delete t key before
            | Error `Not_found -> assert false)
        | None, None -> ())
    | Rel file | Entry { slots = file; _ } -> (
        match slot_of_key key with
        | None -> invalid_arg "File.impose: bad relative key"
        | Some slot -> (
            match target with
            | Some payload -> ignore (Relative_file.write_slot file slot payload)
            | None -> ignore (Relative_file.delete_slot file slot)))
  end

let apply_undo t change = impose t change.key change.before

let apply_redo t change = impose t change.key change.after

let next_after t key =
  match t.impl with
  | Key_seq tree -> Btree.next_after tree key
  | Rel file | Entry { slots = file; _ } ->
      let start = match slot_of_key key with Some s -> s | None -> -1 in
      let rec probe slot =
        if slot > Relative_file.highest_slot file then None
        else
          match Relative_file.read_slot file slot with
          | Some payload -> Some (Key.of_int slot, payload)
          | None -> probe (slot + 1)
      in
      probe (start + 1)

let range t ~lo ~hi =
  match t.impl with
  | Key_seq tree -> Btree.range tree ~lo ~hi
  | Rel _ | Entry _ ->
      let rec collect key acc =
        match next_after t key with
        | Some (k, payload) when Key.compare k hi <= 0 ->
            collect k ((k, payload) :: acc)
        | Some _ | None -> List.rev acc
      in
      let first =
        match read t lo with Some payload -> [ (lo, payload) ] | None -> []
      in
      first @ collect lo []

let lookup_index t ~index key =
  match
    List.find_opt
      (fun i -> String.equal (Secondary_index.name i) index)
      t.indices
  with
  | Some i -> Secondary_index.lookup i key
  | None -> invalid_arg ("File.lookup_index: no index " ^ index)

let count t =
  match t.impl with
  | Key_seq tree -> Btree.count tree
  | Rel file | Entry { slots = file; _ } -> Relative_file.record_count file

let iter t visit =
  match t.impl with
  | Key_seq tree -> Btree.iter tree visit
  | Rel file | Entry { slots = file; _ } ->
      Relative_file.iter file (fun slot payload ->
          visit (Key.of_int slot) payload)

let check_invariants t =
  match t.impl with
  | Rel _ | Entry _ -> Ok ()
  | Key_seq tree -> (
      match Btree.check_invariants tree with
      | Error _ as e -> e
      | Ok () ->
          (* Index consistency: every record appears in each index exactly
             when it carries the indexed field, and no index entry dangles. *)
          let failure = ref None in
          let fail fmt =
            Format.kasprintf
              (fun m -> if !failure = None then failure := Some m)
              fmt
          in
          List.iter
            (fun index ->
              let expected = ref 0 in
              iter t (fun key payload ->
                  match Record.field payload (Secondary_index.field index) with
                  | Some alt ->
                      incr expected;
                      let hits = Secondary_index.lookup index alt in
                      if not (List.exists (Key.equal key) hits) then
                        fail "index %s: record %a not indexed under %s"
                          (Secondary_index.name index) Key.pp key alt
                  | None -> ());
              if Secondary_index.entry_count index <> !expected then
                fail "index %s: %d entries but %d indexed records"
                  (Secondary_index.name index)
                  (Secondary_index.entry_count index)
                  !expected)
            t.indices;
          (match !failure with None -> Ok () | Some m -> Error m))

let snapshot t =
  let impl_restore =
    match t.impl with
    | Key_seq tree -> Btree.snapshot tree
    | Rel file -> Relative_file.snapshot file
    | Entry entry ->
        let slots_restore = Relative_file.snapshot entry.slots
        and next_entry = entry.next_entry in
        fun () ->
          slots_restore ();
          entry.next_entry <- next_entry
  in
  let index_restores = List.map Secondary_index.snapshot t.indices in
  fun () ->
    impl_restore ();
    List.iter (fun restore -> restore ()) index_restores
