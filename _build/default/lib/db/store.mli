(** The block store: logical block contents over a mirrored volume, through
    an LRU cache.

    The store keeps two images of every block: the *current* image (what the
    DISCPROCESS pair holds across its memory and disc) and the *flushed*
    image (what is actually on oxide). A single-module failure never touches
    either — the process-pair survives it. A double failure ([crash]) throws
    the current image away and leaves only the flushed one, which is exactly
    the torn state ROLLFORWARD exists to repair: flushed blocks may contain
    uncommitted updates and lack committed ones, because TMF deliberately
    does not force data blocks at commit.

    I/O charging: a read misses the cache into a physical read; a write
    dirties the cache; dirty evictions and explicit flushes write physically.
    [set_charging false] suspends all physical I/O and cache traffic for
    data-base loading in experiment setup. *)

type t

val create :
  Tandem_disk.Volume.t -> cache_capacity:int -> t

val volume : t -> Tandem_disk.Volume.t

val set_charging : t -> bool -> unit

val alloc : t -> Block_content.t -> int
(** Allocate a fresh block number holding the given content (dirty in
    cache). *)

val read : t -> int -> Block_content.t
(** Raises [Not_found] for a never-allocated or freed block. *)

val write : t -> int -> Block_content.t -> unit

val free : t -> int -> unit

val flush_all : t -> unit
(** Write back every dirty block (a control point / archive preparation). *)

val crash : t -> unit
(** Lose the current image: revert to flushed blocks, empty the cache. *)

val overwrite_disk_image : t -> unit
(** Make the flushed image equal to the current image without charging I/O —
    used when restoring an archived copy in ROLLFORWARD experiments. *)

val block_count : t -> int

val dirty_count : t -> int

val cache_hits : t -> int

val cache_misses : t -> int

val snapshot : t -> (int * Block_content.t) list
(** Current image, sorted by block number (archive creation; tests). *)

val restore : t -> (int * Block_content.t) list -> unit
(** Replace the current image wholesale (archive restoration). *)
