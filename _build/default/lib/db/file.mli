(** A file partition as it exists on one volume: the structured organization
    plus its locally-maintained secondary indices.

    Every mutation returns a {!change} carrying the before- and after-images
    of the affected record — the raw material of TMF audit records. The
    inverse operations {!apply_undo} (transaction backout) and {!apply_redo}
    (ROLLFORWARD) consume changes and keep the indices consistent. *)

type t

type change = {
  file : string;
  key : Key.t;
  before : string option;  (** [None] for an insert. *)
  after : string option;  (** [None] for a delete. *)
}

val pp_change : Format.formatter -> change -> unit

val create : Store.t -> Schema.file_def -> t
(** Instantiate (one partition of) a file on a volume's store. *)

val def : t -> Schema.file_def

val file_name : t -> string

val read : t -> Key.t -> string option

val insert : t -> Key.t -> string -> (change, [ `Duplicate | `Bad_key ]) result
(** For relative files the key must be a decimal slot number; for
    entry-sequenced files use {!append}. *)

val append : t -> string -> (Key.t * change, [ `Wrong_organization ]) result
(** Entry-sequenced insert: the file assigns the next entry number. *)

val update : t -> Key.t -> string -> (change, [ `Not_found | `Bad_key ]) result

val delete : t -> Key.t -> (change, [ `Not_found | `Bad_key ]) result

val apply_undo : t -> change -> unit
(** Restore the before-image (insert→delete, update→old value,
    delete→re-insert), maintaining indices. Idempotent. *)

val apply_redo : t -> change -> unit
(** Re-impose the after-image. Idempotent. *)

val next_after : t -> Key.t -> (Key.t * string) option

val range : t -> lo:Key.t -> hi:Key.t -> (Key.t * string) list

val lookup_index : t -> index:string -> Key.t -> Key.t list
(** Primary keys matching an alternate key ({!Schema.index_def} name). *)

val count : t -> int

val iter : t -> (Key.t -> string -> unit) -> unit

val snapshot : t -> unit -> unit
(** Capture the file's metadata (organization internals and indices) for a
    ROLLFORWARD archive; the thunk restores it. Block contents are handled
    by the store's own snapshot. *)

val check_invariants : t -> (unit, string) result
(** Structural audit of the organization and of index consistency (every
    record indexed exactly once per applicable index, no dangling index
    entries). *)
