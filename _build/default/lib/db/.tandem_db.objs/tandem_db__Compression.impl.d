lib/db/compression.ml: Array Btree Format Key List String
