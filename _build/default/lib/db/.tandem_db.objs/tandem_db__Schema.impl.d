lib/db/schema.ml: Hashtbl Key List String Tandem_os
