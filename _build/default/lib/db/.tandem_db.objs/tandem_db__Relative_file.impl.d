lib/db/relative_file.ml: Array Block_content Hashtbl Int List Store
