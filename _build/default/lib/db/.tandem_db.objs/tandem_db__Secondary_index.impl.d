lib/db/secondary_index.ml: Btree List Record String
