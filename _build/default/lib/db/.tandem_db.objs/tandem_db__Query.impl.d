lib/db/query.ml: File Format Int Key List Option Printf Record Schema String
