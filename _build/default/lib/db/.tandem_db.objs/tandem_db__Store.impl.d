lib/db/store.ml: Block_content Cache Hashtbl Int List Tandem_disk Volume
