lib/db/compression.mli: Btree Format Key
