lib/db/btree.ml: Array Block_content Format Key List Printf Store
