lib/db/key.mli: Format
