lib/db/key.ml: Format Printf String
