lib/db/block_content.ml: Array Key Printf String
