lib/db/entry_file.mli: Store
