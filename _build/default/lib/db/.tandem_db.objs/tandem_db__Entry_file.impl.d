lib/db/entry_file.ml: Array Block_content List Store
