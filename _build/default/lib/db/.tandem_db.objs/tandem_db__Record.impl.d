lib/db/record.ml: Buffer List Option String
