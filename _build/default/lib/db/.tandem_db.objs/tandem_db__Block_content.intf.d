lib/db/block_content.mli: Key
