lib/db/record.mli:
