lib/db/file.ml: Btree Format Key List Record Relative_file Schema Secondary_index String
