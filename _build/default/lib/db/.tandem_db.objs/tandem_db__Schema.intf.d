lib/db/schema.mli: Key Tandem_os
