lib/db/btree.mli: Key Store
