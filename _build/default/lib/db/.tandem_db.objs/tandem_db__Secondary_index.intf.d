lib/db/secondary_index.mli: Key Store
