lib/db/relative_file.mli: Store
