lib/db/file.mli: Format Key Schema Store
