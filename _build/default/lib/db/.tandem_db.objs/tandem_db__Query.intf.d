lib/db/query.mli: File Format Key Record
