lib/db/store.mli: Block_content Tandem_disk
