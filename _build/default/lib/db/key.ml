type t = string

let compare = String.compare

let equal = String.equal

let min_key = ""

let of_int n = Printf.sprintf "%012d" n

let to_int t = int_of_string_opt t

let common_prefix_length a b =
  let limit = min (String.length a) (String.length b) in
  let rec scan i = if i < limit && a.[i] = b.[i] then scan (i + 1) else i in
  scan 0

let pp formatter t = Format.fprintf formatter "%S" t
