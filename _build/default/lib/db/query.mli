(** A miniature ENFORM: the non-procedural relational query language of the
    ENCOMPASS data management system, reduced to its core.

    Queries are strings in a FIND/WHERE/SORTED BY/LIST form:

    {v
      FIND ACCOUNT WHERE branch = SF AND balance > 1000 SORTED BY balance LIST balance branch
      FIND ORDER WHERE customer = 7
    v}

    Evaluation runs against one {!File.t} (one partition); the planner uses
    a secondary index when the WHERE clause contains an equality on an
    indexed field, and falls back to a scan otherwise. Comparisons are
    numeric when both sides parse as integers, lexicographic otherwise. *)

type comparison = Eq | Ne | Lt | Gt | Le | Ge

type condition = { field : string; comparison : comparison; literal : string }

type t = {
  file : string;
  conditions : condition list;  (** conjunction *)
  sort_by : string option;
  projection : string list;  (** empty = all fields *)
}

val parse : string -> (t, string) result
(** Parse the query text; the error carries a human-readable reason. *)

type row = { key : Key.t; fields : Record.fields }

val run : t -> File.t -> (row list, string) result
(** Evaluate against a file partition. Fails if the query names a different
    file than the one given. *)

val ran_via_index : t -> File.t -> bool
(** Whether the planner would satisfy this query through a secondary index
    (exposed for tests and for the EXPLAIN-curious). *)

val pp_row : Format.formatter -> row -> unit
