(** Secondary (alternate-key) indices.

    An index maps an alternate key extracted from the record payload to the
    record's primary key, supporting duplicates. Entries live in their own
    B+-tree under a composite key, so alternate-key access costs realistic
    extra I/O and index maintenance costs extra writes — the "automatic
    maintenance of the indices during file update" the paper lists. *)

type t

val create : Store.t -> name:string -> field:string -> degree:int -> t
(** Index on the named payload field (records without the field are simply
    not indexed). *)

val name : t -> string

val field : t -> string

val insert_entry : t -> primary:Key.t -> payload:string -> unit

val delete_entry : t -> primary:Key.t -> payload:string -> unit

val update_entry :
  t -> primary:Key.t -> before:string -> after:string -> unit
(** Adjust the index for an update (no-op when the field value did not
    change). *)

val lookup : t -> Key.t -> Key.t list
(** Primary keys of all records whose alternate key equals the argument,
    ascending. *)

val entry_count : t -> int

val snapshot : t -> unit -> unit
(** Metadata snapshot of the underlying index tree. *)
