(** Relative files: records addressed by slot number.

    Slots are grouped into fixed-size segments, one block per segment,
    allocated lazily. Reading an empty or never-written slot returns
    [None]. *)

type t

val create : Store.t -> name:string -> slots_per_segment:int -> t

val name : t -> string

val read_slot : t -> int -> string option

val write_slot : t -> int -> string -> string option
(** Returns the previous contents (the before-image). *)

val delete_slot : t -> int -> string option
(** Empty the slot; returns the previous contents. *)

val record_count : t -> int

val highest_slot : t -> int
(** Largest slot ever written; [-1] when empty. *)

val iter : t -> (int -> string -> unit) -> unit
(** Visit occupied slots in ascending order. *)

val snapshot : t -> unit -> unit
(** Capture file metadata (segment map, counters) for archiving; the thunk
    restores it. *)
