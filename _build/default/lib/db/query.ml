type comparison = Eq | Ne | Lt | Gt | Le | Ge

type condition = { field : string; comparison : comparison; literal : string }

type t = {
  file : string;
  conditions : condition list;
  sort_by : string option;
  projection : string list;
}

type row = { key : Key.t; fields : Record.fields }

(* ------------------------------------------------------------------ *)
(* Parsing *)

let tokenize text =
  String.split_on_char ' ' text
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun token -> token <> "")

let comparison_of_token = function
  | "=" -> Some Eq
  | "<>" -> Some Ne
  | "<" -> Some Lt
  | ">" -> Some Gt
  | "<=" -> Some Le
  | ">=" -> Some Ge
  | _ -> None

let keyword token expected =
  String.uppercase_ascii token = expected

let parse text =
  match tokenize text with
  | find :: file :: rest when keyword find "FIND" ->
      let query =
        { file; conditions = []; sort_by = None; projection = [] }
      in
      let rec conditions acc = function
        (* field op literal [AND ...] *)
        | field :: op :: literal :: rest -> (
            match comparison_of_token op with
            | None -> Error (Printf.sprintf "expected a comparison, got %S" op)
            | Some comparison -> (
                let acc = { field; comparison; literal } :: acc in
                match rest with
                | conj :: rest when keyword conj "AND" -> conditions acc rest
                | rest -> Ok (List.rev acc, rest)))
        | _ -> Error "dangling WHERE clause"
      in
      let rec clauses query = function
        | [] -> Ok query
        | where :: rest when keyword where "WHERE" -> (
            match conditions [] rest with
            | Error _ as e -> e
            | Ok (conds, rest) -> clauses { query with conditions = conds } rest)
        | sorted :: by :: field :: rest
          when keyword sorted "SORTED" && keyword by "BY" ->
            clauses { query with sort_by = Some field } rest
        | list :: rest when keyword list "LIST" ->
            if rest = [] then Error "LIST needs at least one field"
            else Ok { query with projection = rest }
        | token :: _ -> Error (Printf.sprintf "unexpected token %S" token)
      in
      clauses query rest
  | _ -> Error "a query starts with FIND <file>"

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let compare_values a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some x, Some y -> Int.compare x y
  | _ -> String.compare a b

let satisfies fields condition =
  match List.assoc_opt condition.field fields with
  | None -> false
  | Some value -> (
      let c = compare_values value condition.literal in
      match condition.comparison with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Gt -> c > 0
      | Le -> c <= 0
      | Ge -> c >= 0)

let indexed_equality query file =
  let indexed_fields =
    List.map (fun i -> (i.Schema.on_field, i.Schema.index_name))
      (File.def file).Schema.indices
  in
  List.find_map
    (fun condition ->
      if condition.comparison = Eq then
        List.assoc_opt condition.field indexed_fields
        |> Option.map (fun index -> (index, condition))
      else None)
    query.conditions

let ran_via_index query file = indexed_equality query file <> None

let run query file =
  if not (String.equal query.file (File.file_name file)) then
    Error
      (Printf.sprintf "query names %s but was run against %s" query.file
         (File.file_name file))
  else begin
    let candidates =
      match indexed_equality query file with
      | Some (index, condition) ->
          (* Index access path: fetch only the matching primary keys. *)
          List.filter_map
            (fun key ->
              Option.map (fun payload -> (key, payload))
                (File.read file key))
            (File.lookup_index file ~index condition.literal)
      | None ->
          (* Scan access path. *)
          let rows = ref [] in
          File.iter file (fun key payload -> rows := (key, payload) :: !rows);
          List.rev !rows
    in
    let matching =
      List.filter_map
        (fun (key, payload) ->
          match Record.decode payload with
          | fields when List.for_all (satisfies fields) query.conditions ->
              Some { key; fields }
          | _ -> None
          | exception Invalid_argument _ -> None)
        candidates
    in
    let sorted =
      match query.sort_by with
      | None -> matching
      | Some field ->
          List.stable_sort
            (fun a b ->
              match
                (List.assoc_opt field a.fields, List.assoc_opt field b.fields)
              with
              | Some x, Some y -> compare_values x y
              | Some _, None -> -1
              | None, Some _ -> 1
              | None, None -> 0)
            matching
    in
    let projected =
      if query.projection = [] then sorted
      else
        List.map
          (fun row ->
            {
              row with
              fields =
                List.filter_map
                  (fun field ->
                    Option.map (fun value -> (field, value))
                      (List.assoc_opt field row.fields))
                  query.projection;
            })
          sorted
    in
    Ok projected
  end

let pp_row formatter row =
  Format.fprintf formatter "%a:" Key.pp row.key;
  List.iter
    (fun (name, value) -> Format.fprintf formatter " %s=%s" name value)
    row.fields
