(** On-"disc" block formats.

    Every structured-file organization stores its blocks through the same
    {!Store}; this module centralizes the block layout the way a real disc
    format does. All arrays inside a block are treated as immutable:
    modifying a block means writing a fresh value under the same block
    number, which is what gives the store its crash semantics (the flushed
    image cannot alias in-memory state). *)

type t =
  | Btree_leaf of {
      keys : Key.t array;
      payloads : string array;
      next_leaf : int option;  (** Sibling link for range scans. *)
    }
  | Btree_internal of {
      separators : Key.t array;  (** [n] separators split [n+1] children. *)
      children : int array;
    }
  | Relative_segment of {
      base_slot : int;
      slots : string option array;
    }
  | Entry_segment of {
      base_entry : int;
      entries : string array;
    }

val size_bytes : t -> int
(** Approximate serialized size, for compression statistics and audit-volume
    accounting. *)

val describe : t -> string
