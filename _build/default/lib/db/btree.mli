(** Key-sequenced files: a B+-tree over the block store.

    Records live in leaf blocks chained by sibling links (for sequential and
    range access); internal blocks hold separator keys only. Inserts split
    full blocks; deletes are relaxed (blocks may become under-full or empty
    but stay structurally valid), which matches common practice and keeps
    the structure verifiable by {!check_invariants}.

    Every access is charged through the store: index descent costs cache
    touches and misses cost physical reads, so multi-key and range-access
    experiments measure realistic I/O. *)

type t

val create : Store.t -> name:string -> degree:int -> t
(** [degree] is the minimum degree [d >= 2]: every block holds at most
    [2d - 1] keys. Small degrees make deep trees for cheap (they exercise
    splits quickly in tests); realistic blocks are [d = 32] or more. *)

val name : t -> string

val count : t -> int
(** Number of records. *)

val height : t -> int
(** Levels from root to leaf (1 = root is a leaf). *)

val insert : t -> Key.t -> string -> (unit, [ `Duplicate ]) result

val find : t -> Key.t -> string option

val update : t -> Key.t -> string -> (string, [ `Not_found ]) result
(** Returns the previous payload (the before-image). *)

val delete : t -> Key.t -> (string, [ `Not_found ]) result
(** Returns the deleted payload (the before-image). *)

val next_after : t -> Key.t -> (Key.t * string) option
(** Smallest record strictly greater than the key (sequential access). *)

val range : t -> lo:Key.t -> hi:Key.t -> (Key.t * string) list
(** All records with [lo <= key <= hi], ascending. *)

val iter : t -> (Key.t -> string -> unit) -> unit
(** Ascending full scan. *)

val to_alist : t -> (Key.t * string) list

val check_invariants : t -> (unit, string) result
(** Structural audit: uniform depth, ordered and bounded keys everywhere,
    consistent sibling chain, record count. *)

val leaf_blocks : t -> int
(** Number of leaf blocks (compression statistics). *)

val snapshot : t -> unit -> unit
(** Capture the tree's own metadata (root block, record count); applying the
    returned thunk restores it. Block contents are snapshot separately by
    the store — together they form a ROLLFORWARD archive. *)
