type t = {
  store : Store.t;
  file_name : string;
  entries_per_segment : int;
  mutable segments : int list; (* newest first; block per full/partial segment *)
  mutable total : int;
}

let create store ~name ~entries_per_segment =
  if entries_per_segment < 1 then
    invalid_arg "Entry_file.create: entries_per_segment must be positive";
  { store; file_name = name; entries_per_segment; segments = []; total = 0 }

let name t = t.file_name

let read_segment t block =
  match Store.read t.store block with
  | Block_content.Entry_segment { base_entry; entries } -> (base_entry, entries)
  | _ -> invalid_arg "Entry_file: foreign block"

let append t payload =
  let entry = t.total in
  let offset = entry mod t.entries_per_segment in
  (if offset = 0 then begin
     let block =
       Store.alloc t.store
         (Block_content.Entry_segment
            { base_entry = entry; entries = [| payload |] })
     in
     t.segments <- block :: t.segments
   end
   else
     match t.segments with
     | [] -> assert false
     | block :: _ ->
         let base_entry, entries = read_segment t block in
         Store.write t.store block
           (Block_content.Entry_segment
              { base_entry; entries = Array.append entries [| payload |] }));
  t.total <- t.total + 1;
  entry

let read_entry t entry =
  if entry < 0 || entry >= t.total then None
  else begin
    let segment_index = entry / t.entries_per_segment in
    let newest_first_index =
      List.length t.segments - 1 - segment_index
    in
    let block = List.nth t.segments newest_first_index in
    let base_entry, entries = read_segment t block in
    Some entries.(entry - base_entry)
  end

let count t = t.total

let iter_from t start visit =
  let blocks = List.rev t.segments in
  List.iter
    (fun block ->
      let base_entry, entries = read_segment t block in
      Array.iteri
        (fun offset payload ->
          let entry = base_entry + offset in
          if entry >= start then visit entry payload)
        entries)
    blocks

let snapshot t =
  let segments = t.segments and total = t.total in
  fun () ->
    t.segments <- segments;
    t.total <- total
