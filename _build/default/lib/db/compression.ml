type stats = { raw_bytes : int; compressed_bytes : int }

let ratio { raw_bytes; compressed_bytes } =
  if raw_bytes = 0 then 1.0
  else float_of_int compressed_bytes /. float_of_int raw_bytes

let front_code keys =
  let raw = Array.fold_left (fun acc k -> acc + String.length k) 0 keys in
  let compressed = ref 0 in
  Array.iteri
    (fun i key ->
      if i = 0 then compressed := !compressed + String.length key
      else begin
        let shared = Key.common_prefix_length keys.(i - 1) key in
        compressed := !compressed + 1 + (String.length key - shared)
      end)
    keys;
  { raw_bytes = raw; compressed_bytes = !compressed }

let btree_stats tree =
  (* Walk records in order and recompute per-leaf boundaries from scratch
     would need leaf access; approximating with the full ordered key stream
     is conservative (cross-leaf prefixes would not compress on disc), so
     instead accumulate per run of [to_alist] restarted at nothing — the
     ordered stream equals the concatenated leaves, and front-coding resets
     only at leaf boundaries, whose count we know. *)
  let keys = Array.of_list (List.map fst (Btree.to_alist tree)) in
  let stream = front_code keys in
  if Array.length keys = 0 then stream
  else begin
    (* Charge a full (uncompressed) first key per extra leaf block. *)
    let leaves = Btree.leaf_blocks tree in
    let average_key =
      stream.raw_bytes / max 1 (Array.length keys)
    in
    let penalty = (leaves - 1) * average_key in
    { stream with compressed_bytes = min stream.raw_bytes (stream.compressed_bytes + penalty) }
  end

let pp formatter stats =
  Format.fprintf formatter "%d -> %d bytes (%.2fx)" stats.raw_bytes
    stats.compressed_bytes (ratio stats)
