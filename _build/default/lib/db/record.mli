(** Record payloads and a small field codec.

    The data-base layer stores opaque payload strings; applications that want
    named fields (the manufacturing data base, the banking workload) encode
    them with this codec. The encoding is length-prefixed, so field names and
    values may contain any byte — in particular, a whole encoded record can
    ride inside a field of another (the suspense file relies on this). *)

type fields = (string * string) list

val encode : fields -> string

val decode : string -> fields
(** Inverse of {!encode}; raises [Invalid_argument] on malformed input. *)

val field : string -> string -> string option
(** [field payload name] decodes and extracts one field. *)

val set_field : string -> string -> string -> string
(** [set_field payload name value] re-encodes with [name] set to [value]
    (added if absent). *)

val int_field : string -> string -> int option

val size : string -> int
(** Payload size in bytes (for audit-record accounting). *)
