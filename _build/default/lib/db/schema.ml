type organization = Key_sequenced | Relative | Entry_sequenced

type index_def = { index_name : string; on_field : string }

type partition_def = {
  low_key : Key.t;
  node : Tandem_os.Ids.node_id;
  volume : string;
}

type file_def = {
  file_name : string;
  organization : organization;
  audited : bool;
  degree : int;
  indices : index_def list;
  partitions : partition_def list;
  restrict_to_nodes : Tandem_os.Ids.node_id list option;
}

let define ~name ~organization ?(audited = true) ?(degree = 16)
    ?(indices = []) ?restrict_to_nodes ~partitions () =
  (match partitions with
  | [] -> invalid_arg "Schema.define: a file needs at least one partition"
  | first :: _ ->
      if not (Key.equal first.low_key Key.min_key) then
        invalid_arg "Schema.define: first partition must start at the minimum key");
  let rec check_ascending = function
    | a :: (b :: _ as rest) ->
        if Key.compare a.low_key b.low_key >= 0 then
          invalid_arg "Schema.define: partition low keys must ascend";
        check_ascending rest
    | [ _ ] | [] -> ()
  in
  check_ascending partitions;
  if indices <> [] && organization <> Key_sequenced then
    invalid_arg "Schema.define: secondary indices require a key-sequenced file";
  if degree < 2 then invalid_arg "Schema.define: degree must be >= 2";
  {
    file_name = name;
    organization;
    audited;
    degree;
    indices;
    partitions;
    restrict_to_nodes;
  }

let node_allowed def node =
  match def.restrict_to_nodes with
  | None -> true
  | Some nodes -> List.mem node nodes

let partition_index def key =
  let rec scan i best = function
    | [] -> best
    | p :: rest ->
        if Key.compare p.low_key key <= 0 then scan (i + 1) i rest else best
  in
  scan 0 0 def.partitions

let partition_for def key = List.nth def.partitions (partition_index def key)

type t = { files : (string, file_def) Hashtbl.t }

let create_dictionary () = { files = Hashtbl.create 16 }

let add t def =
  if Hashtbl.mem t.files def.file_name then
    invalid_arg ("Schema.add: duplicate file " ^ def.file_name);
  Hashtbl.replace t.files def.file_name def

let find t name = Hashtbl.find_opt t.files name

let all t =
  Hashtbl.fold (fun _ def acc -> def :: acc) t.files []
  |> List.sort (fun a b -> String.compare a.file_name b.file_name)
