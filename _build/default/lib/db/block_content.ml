type t =
  | Btree_leaf of {
      keys : Key.t array;
      payloads : string array;
      next_leaf : int option;
    }
  | Btree_internal of { separators : Key.t array; children : int array }
  | Relative_segment of { base_slot : int; slots : string option array }
  | Entry_segment of { base_entry : int; entries : string array }

let string_array_bytes a =
  Array.fold_left (fun acc s -> acc + String.length s + 2) 0 a

let size_bytes = function
  | Btree_leaf { keys; payloads; _ } ->
      8 + string_array_bytes keys + string_array_bytes payloads
  | Btree_internal { separators; children } ->
      8 + string_array_bytes separators + (4 * Array.length children)
  | Relative_segment { slots; _ } ->
      8
      + Array.fold_left
          (fun acc slot ->
            acc + match slot with Some s -> String.length s + 2 | None -> 1)
          0 slots
  | Entry_segment { entries; _ } -> 8 + string_array_bytes entries

let describe = function
  | Btree_leaf { keys; _ } ->
      Printf.sprintf "btree leaf (%d keys)" (Array.length keys)
  | Btree_internal { children; _ } ->
      Printf.sprintf "btree internal (%d children)" (Array.length children)
  | Relative_segment { base_slot; slots } ->
      Printf.sprintf "relative segment @%d (%d slots)" base_slot
        (Array.length slots)
  | Entry_segment { base_entry; entries } ->
      Printf.sprintf "entry segment @%d (%d entries)" base_entry
        (Array.length entries)
