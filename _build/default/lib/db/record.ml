type fields = (string * string) list

(* Length-prefixed encoding: "<len>:<name><len>:<value>" per field. Any byte
   may appear in names and values, so encoded records nest (the suspense
   file carries whole record payloads inside its own records). *)

let encode fields =
  let buffer = Buffer.create 64 in
  List.iter
    (fun (name, value) ->
      Buffer.add_string buffer (string_of_int (String.length name));
      Buffer.add_char buffer ':';
      Buffer.add_string buffer name;
      Buffer.add_string buffer (string_of_int (String.length value));
      Buffer.add_char buffer ':';
      Buffer.add_string buffer value)
    fields;
  Buffer.contents buffer

let decode payload =
  let limit = String.length payload in
  let parse_chunk position =
    match String.index_from_opt payload position ':' with
    | None -> invalid_arg "Record.decode: missing length delimiter"
    | Some colon -> (
        match int_of_string_opt (String.sub payload position (colon - position)) with
        | None -> invalid_arg "Record.decode: malformed length"
        | Some length ->
            if colon + 1 + length > limit then
              invalid_arg "Record.decode: truncated field";
            (String.sub payload (colon + 1) length, colon + 1 + length))
  in
  let rec parse position acc =
    if position >= limit then List.rev acc
    else begin
      let name, after_name = parse_chunk position in
      let value, after_value = parse_chunk after_name in
      parse after_value ((name, value) :: acc)
    end
  in
  parse 0 []

let field payload name = List.assoc_opt name (decode payload)

let set_field payload name value =
  let fields = decode payload in
  let replaced = ref false in
  let updated =
    List.map
      (fun (n, v) ->
        if String.equal n name then begin
          replaced := true;
          (n, value)
        end
        else (n, v))
      fields
  in
  encode (if !replaced then updated else updated @ [ (name, value) ])

let int_field payload name = Option.bind (field payload name) int_of_string_opt

let size payload = String.length payload
