type t = {
  store : Store.t;
  file_name : string;
  slots_per_segment : int;
  mutable segments : (int, int) Hashtbl.t; (* segment index -> block *)
  mutable records : int;
  mutable top_slot : int;
}

let create store ~name ~slots_per_segment =
  if slots_per_segment < 1 then
    invalid_arg "Relative_file.create: slots_per_segment must be positive";
  {
    store;
    file_name = name;
    slots_per_segment;
    segments = Hashtbl.create 16;
    records = 0;
    top_slot = -1;
  }

let name t = t.file_name

let segment_of t slot = slot / t.slots_per_segment

let offset_of t slot = slot mod t.slots_per_segment

let read_segment t index =
  match Hashtbl.find_opt t.segments index with
  | None -> None
  | Some block -> (
      match Store.read t.store block with
      | Block_content.Relative_segment { slots; _ } -> Some (block, slots)
      | _ -> invalid_arg "Relative_file: foreign block")

let read_slot t slot =
  if slot < 0 then invalid_arg "Relative_file.read_slot: negative slot";
  match read_segment t (segment_of t slot) with
  | None -> None
  | Some (_, slots) -> slots.(offset_of t slot)

let write_slot t slot payload =
  if slot < 0 then invalid_arg "Relative_file.write_slot: negative slot";
  let index = segment_of t slot in
  let block, slots =
    match read_segment t index with
    | Some (block, slots) -> (block, slots)
    | None ->
        let slots = Array.make t.slots_per_segment None in
        let block =
          Store.alloc t.store
            (Block_content.Relative_segment
               { base_slot = index * t.slots_per_segment; slots })
        in
        Hashtbl.replace t.segments index block;
        (block, slots)
  in
  let before = slots.(offset_of t slot) in
  let updated = Array.copy slots in
  updated.(offset_of t slot) <- Some payload;
  Store.write t.store block
    (Block_content.Relative_segment
       { base_slot = index * t.slots_per_segment; slots = updated });
  if before = None then t.records <- t.records + 1;
  t.top_slot <- max t.top_slot slot;
  before

let delete_slot t slot =
  if slot < 0 then invalid_arg "Relative_file.delete_slot: negative slot";
  let index = segment_of t slot in
  match read_segment t index with
  | None -> None
  | Some (block, slots) ->
      let before = slots.(offset_of t slot) in
      if before <> None then begin
        let updated = Array.copy slots in
        updated.(offset_of t slot) <- None;
        Store.write t.store block
          (Block_content.Relative_segment
             { base_slot = index * t.slots_per_segment; slots = updated });
        t.records <- t.records - 1
      end;
      before

let record_count t = t.records

let highest_slot t = t.top_slot

let iter t visit =
  let indices =
    Hashtbl.fold (fun index _ acc -> index :: acc) t.segments []
    |> List.sort Int.compare
  in
  List.iter
    (fun index ->
      match read_segment t index with
      | None -> ()
      | Some (_, slots) ->
          Array.iteri
            (fun offset slot ->
              match slot with
              | Some payload ->
                  visit ((index * t.slots_per_segment) + offset) payload
              | None -> ())
            slots)
    indices

let snapshot t =
  let segments = Hashtbl.copy t.segments
  and records = t.records
  and top_slot = t.top_slot in
  fun () ->
    t.segments <- Hashtbl.copy segments;
    t.records <- records;
    t.top_slot <- top_slot
