(** Record keys: byte strings under lexicographic order. *)

type t = string

val compare : t -> t -> int

val equal : t -> t -> bool

val min_key : t
(** The empty string — lower bound of the whole key space. *)

val of_int : int -> t
(** Zero-padded decimal rendering, so numeric order matches key order (used
    by workload generators for account numbers and the like). *)

val to_int : t -> int option

val common_prefix_length : t -> t -> int

val pp : Format.formatter -> t -> unit
