(** The data definition layer: file definitions and the data dictionary.

    A file definition names its organization, whether updates to it are
    TMF-audited, its secondary indices, and how it is partitioned by key
    range across volumes (possibly on multiple nodes) — the features the
    paper lists for the ENCOMPASS data-base manager. *)

type organization = Key_sequenced | Relative | Entry_sequenced

type index_def = { index_name : string; on_field : string }

type partition_def = {
  low_key : Key.t;  (** This partition holds keys [>= low_key]. *)
  node : Tandem_os.Ids.node_id;
  volume : string;
}

type file_def = {
  file_name : string;
  organization : organization;
  audited : bool;
  degree : int;  (** B+-tree minimum degree / segment size for the others. *)
  indices : index_def list;
  partitions : partition_def list;  (** Ascending; first is [Key.min_key]. *)
  restrict_to_nodes : Tandem_os.Ids.node_id list option;
      (** Security control by network node: when set, only requesters
          running on these nodes may access the file ([None] = open). *)
}

val define :
  name:string ->
  organization:organization ->
  ?audited:bool ->
  ?degree:int ->
  ?indices:index_def list ->
  ?restrict_to_nodes:Tandem_os.Ids.node_id list ->
  partitions:partition_def list ->
  unit ->
  file_def
(** Validates: at least one partition, first at [Key.min_key], strictly
    ascending low keys; indices only on key-sequenced files. [audited]
    defaults to [true], [degree] to [16]. *)

val node_allowed : file_def -> Tandem_os.Ids.node_id -> bool

val partition_for : file_def -> Key.t -> partition_def
(** The partition holding a key: the last whose [low_key] is [<= key]. *)

val partition_index : file_def -> Key.t -> int

(** {1 Data dictionary} *)

type t

val create_dictionary : unit -> t

val add : t -> file_def -> unit
(** Raises [Invalid_argument] on duplicate names. *)

val find : t -> string -> file_def option

val all : t -> file_def list
