open Tandem_sim

type t = {
  engine : Engine.t;
  name : string;
  access_time : Sim_time.span;
  mutable up : bool;
  mutable busy_until : Sim_time.t;
  mutable ios : int;
}

let create engine ~name ~access_time =
  { engine; name; access_time; up = true; busy_until = Sim_time.zero; ios = 0 }

let name t = t.name

let is_up t = t.up

let mark_down t =
  t.up <- false;
  t.busy_until <- Engine.now t.engine

let mark_up t = t.up <- true

let io t =
  if not t.up then invalid_arg ("Drive.io: " ^ t.name ^ " is down");
  let now = Engine.now t.engine in
  let start = max now t.busy_until in
  t.busy_until <- Sim_time.add start t.access_time;
  t.ios <- t.ios + 1;
  Fiber.sleep t.engine (Sim_time.diff t.busy_until now)

let busy_until t = t.busy_until

let io_count t = t.ios
