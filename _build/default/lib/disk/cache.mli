(** LRU block cache bookkeeping.

    Tracks which block numbers are resident and which are dirty; the
    DISCPROCESS consults it to decide whether a logical access costs a
    physical one, and learns which dirty block a capacity eviction pushes
    out. The cached contents themselves live in the store above — this
    module is pure replacement policy and accounting, which is all the
    experiments need ("a cache buffering scheme designed to keep the most
    recently referenced blocks of data in main memory"). *)

type t

type block = int

val create : capacity:int -> t

val capacity : t -> int

val resident : t -> int

type eviction = { block : block; dirty : bool }

val touch : t -> block -> [ `Hit | `Miss of eviction option ]
(** Reference a block: on a hit it becomes most-recently-used; on a miss it
    is brought in, possibly evicting the least-recently-used block (returned
    so the caller can write it back if dirty). *)

val mark_dirty : t -> block -> unit
(** Requires the block to be resident. *)

val clean : t -> block -> unit

val is_dirty : t -> block -> bool

val dirty_blocks : t -> block list

val drop : t -> block -> unit
(** Remove a block without write-back (file deletion). *)

val clear : t -> unit
(** Lose everything (processor pair double failure). *)

val hits : t -> int

val misses : t -> int
