type block = int

(* Doubly-linked LRU list threaded through a hashtable. *)
type entry = {
  block : block;
  mutable dirty : bool;
  mutable prev : entry option; (* towards most-recently-used *)
  mutable next : entry option; (* towards least-recently-used *)
}

type t = {
  cap : int;
  table : (block, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable hit_count : int;
  mutable miss_count : int;
}

type eviction = { block : block; dirty : bool }

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    mru = None;
    lru = None;
    hit_count = 0;
    miss_count = 0;
  }

let capacity t = t.cap

let resident t = Hashtbl.length t.table

let unlink t entry =
  (match entry.prev with
  | Some p -> p.next <- entry.next
  | None -> t.mru <- entry.next);
  (match entry.next with
  | Some n -> n.prev <- entry.prev
  | None -> t.lru <- entry.prev);
  entry.prev <- None;
  entry.next <- None

let push_front t entry =
  entry.next <- t.mru;
  entry.prev <- None;
  (match t.mru with Some m -> m.prev <- Some entry | None -> ());
  t.mru <- Some entry;
  if t.lru = None then t.lru <- Some entry

let touch t block =
  match Hashtbl.find_opt t.table block with
  | Some entry ->
      t.hit_count <- t.hit_count + 1;
      unlink t entry;
      push_front t entry;
      `Hit
  | None ->
      t.miss_count <- t.miss_count + 1;
      let evicted =
        if Hashtbl.length t.table >= t.cap then begin
          match t.lru with
          | Some victim ->
              unlink t victim;
              Hashtbl.remove t.table victim.block;
              Some { block = victim.block; dirty = victim.dirty }
          | None -> None
        end
        else None
      in
      let entry = { block; dirty = false; prev = None; next = None } in
      Hashtbl.replace t.table block entry;
      push_front t entry;
      `Miss evicted

let mark_dirty t block =
  match Hashtbl.find_opt t.table block with
  | Some entry -> entry.dirty <- true
  | None -> invalid_arg "Cache.mark_dirty: block not resident"

let clean t block =
  match Hashtbl.find_opt t.table block with
  | Some entry -> entry.dirty <- false
  | None -> ()

let is_dirty t block =
  match Hashtbl.find_opt t.table block with
  | Some entry -> entry.dirty
  | None -> false

let dirty_blocks t =
  Hashtbl.fold
    (fun block (entry : entry) acc -> if entry.dirty then block :: acc else acc)
    t.table []
  |> List.sort Int.compare

let drop t block =
  match Hashtbl.find_opt t.table block with
  | Some entry ->
      unlink t entry;
      Hashtbl.remove t.table block
  | None -> ()

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

let hits t = t.hit_count

let misses t = t.miss_count
