(** A single disc drive: a failure unit with a FIFO service queue.

    The drive serves one physical access at a time; a fiber performing I/O is
    delayed behind everything already queued. Contents live in the data-base
    layer — the drive models only timing, failure and accounting. *)

type t

val create :
  Tandem_sim.Engine.t ->
  name:string ->
  access_time:Tandem_sim.Sim_time.span ->
  t

val name : t -> string

val is_up : t -> bool

val mark_down : t -> unit

val mark_up : t -> unit

val io : t -> unit
(** Perform one physical access: the calling fiber sleeps until the drive has
    served it. Raises [Invalid_argument] if the drive is down — callers must
    check {!is_up} (the volume layer does). *)

val busy_until : t -> Tandem_sim.Sim_time.t
(** When the drive's queue drains (for choosing the less-busy mirror). *)

val io_count : t -> int
(** Physical accesses served since creation. *)
