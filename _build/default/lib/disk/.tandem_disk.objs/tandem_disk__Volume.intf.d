lib/disk/volume.mli: Tandem_sim
