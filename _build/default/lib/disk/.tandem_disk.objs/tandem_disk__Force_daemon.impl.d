lib/disk/force_daemon.ml: Fiber List Tandem_sim Volume
