lib/disk/force_daemon.mli: Volume
