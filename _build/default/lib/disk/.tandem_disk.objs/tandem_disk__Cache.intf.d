lib/disk/cache.mli:
