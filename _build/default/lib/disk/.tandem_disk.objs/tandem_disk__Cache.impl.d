lib/disk/cache.ml: Hashtbl Int List
