lib/disk/volume.ml: Drive Engine Fiber List Metrics Tandem_sim
