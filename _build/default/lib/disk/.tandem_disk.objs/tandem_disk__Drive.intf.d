lib/disk/drive.mli: Tandem_sim
