lib/disk/drive.ml: Engine Fiber Sim_time Tandem_sim
