lib/baseline/wal_tm.ml: Engine Fiber Fiber_mutex File Hashtbl List Metrics Printf Schema Sim_time Store Tandem_db Tandem_disk Tandem_lock Tandem_sim
