lib/baseline/wal_tm.mli: Tandem_db Tandem_disk Tandem_sim
