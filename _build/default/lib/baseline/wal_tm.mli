(** The conventional comparator: a single-system transaction manager using
    Write-Ahead-Log with halt-and-restart recovery.

    This is the design the paper positions TMF against: "conventional data
    base recovery techniques … are oriented to repairing the data base after
    a system halt and restart". Discipline, per the paper's description of
    WAL: before-images are write-forced to the log *prior to performing any
    update of the data base*, and the commit record is forced at commit. A
    processor crash halts the whole system: every in-flight transaction is
    lost, service stops, and restart scans the log — redoing committed work
    since the last control point and undoing losers — before service
    resumes. Experiments E5 (availability under failure) and E6 (forced
    writes per transaction) run the same workload against this manager and
    against TMF. *)

type t

val create :
  engine:Tandem_sim.Engine.t ->
  metrics:Tandem_sim.Metrics.t ->
  data_volume:Tandem_disk.Volume.t ->
  log_volume:Tandem_disk.Volume.t ->
  ?cache_capacity:int ->
  ?lock_timeout:Tandem_sim.Sim_time.span ->
  unit ->
  t

val add_file : t -> Tandem_db.Schema.file_def -> unit
(** Single-system: every partition lands on the one data volume. *)

val load_file : t -> file:string -> (Tandem_db.Key.t * string) list -> unit

val is_available : t -> bool

type tx

val begin_transaction : t -> (tx, [ `Unavailable ]) result

val read :
  t -> tx -> file:string -> Tandem_db.Key.t -> (string option, [ `Lock_timeout | `Halted ]) result
(** Acquires the record lock (all reads lock, as in the TMF configuration
    under comparison). Runs in a fiber. *)

val update :
  t -> tx -> file:string -> Tandem_db.Key.t -> string ->
  (unit, [ `Lock_timeout | `Not_found | `Halted ]) result
(** Forces the log record before touching the data base, per the WAL rule. *)

val insert :
  t -> tx -> file:string -> Tandem_db.Key.t -> string ->
  (unit, [ `Lock_timeout | `Duplicate | `Halted ]) result

val delete :
  t -> tx -> file:string -> Tandem_db.Key.t ->
  (unit, [ `Lock_timeout | `Not_found | `Halted ]) result

val commit : t -> tx -> (unit, [ `Halted ]) result
(** Force the commit record; release locks. *)

val abort : t -> tx -> unit
(** Undo from the in-memory log tail; release locks. *)

val file_contents : t -> file:string -> (Tandem_db.Key.t * string) list
(** Direct (uncharged) observation. *)

val control_point : t -> bool
(** Take a control point (flush + snapshot + log position): restart replays
    only the log written after the most recent one. Sharp control points
    require quiescence: returns [false] (and does nothing) while any
    transaction is live. Runs in a fiber (the flush performs physical
    writes). *)

(** {1 Crash and restart} *)

val crash : t -> unit
(** System halt: volatile state is lost (cache reverts to flushed blocks,
    live transactions vanish, locks drop); service becomes unavailable
    until {!restart} completes. *)

val restart : t -> on_done:(unit -> unit) -> unit
(** Run crash-restart recovery in a fiber: scan the (forced, surviving) log;
    redo committed transactions' changes in order, undo losers; then reopen
    service. [on_done] fires at completion. Restart time grows with the log
    length — the optimization-for-restart-speed trade-off the paper
    contrasts with NonStop. *)

val unavailable_total : t -> Tandem_sim.Sim_time.span
(** Accumulated service outage (halt to end-of-restart). *)

val log_records : t -> int

val forced_log_writes : t -> int

val transactions_lost : t -> int
(** In-flight transactions destroyed by crashes. *)
