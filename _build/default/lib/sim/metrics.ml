type counter = { mutable count : int }

type sample = {
  mutable values : float array;
  mutable used : int;
  mutable sorted : bool;
}

type metric = Counter of counter | Gauge of int ref | Sample of sample

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
      let c = { count = 0 } in
      Hashtbl.replace t.table name (Counter c);
      c

let incr c = c.count <- c.count + 1

let add c n = c.count <- c.count + n

let counter_value c = c.count

let read_counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c.count
  | Some _ -> invalid_arg ("Metrics.read_counter: " ^ name ^ " is not a counter")
  | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g := v
  | Some _ -> invalid_arg ("Metrics.set_gauge: " ^ name ^ " is not a gauge")
  | None -> Hashtbl.replace t.table name (Gauge (ref v))

let read_gauge t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> !g
  | Some _ -> invalid_arg ("Metrics.read_gauge: " ^ name ^ " is not a gauge")
  | None -> 0

let sample t name =
  match Hashtbl.find_opt t.table name with
  | Some (Sample s) -> s
  | Some _ -> invalid_arg ("Metrics.sample: " ^ name ^ " is not a sample")
  | None ->
      let s = { values = [||]; used = 0; sorted = true } in
      Hashtbl.replace t.table name (Sample s);
      s

let observe s v =
  let capacity = Array.length s.values in
  if s.used >= capacity then begin
    let values = Array.make (max 64 (2 * capacity)) 0.0 in
    Array.blit s.values 0 values 0 s.used;
    s.values <- values
  end;
  s.values.(s.used) <- v;
  s.used <- s.used + 1;
  s.sorted <- false

let observe_span t name span =
  observe (sample t name) (float_of_int span /. 1e3)

let sample_count s = s.used

let mean s =
  if s.used = 0 then Float.nan
  else begin
    let total = ref 0.0 in
    for i = 0 to s.used - 1 do
      total := !total +. s.values.(i)
    done;
    !total /. float_of_int s.used
  end

let ensure_sorted s =
  if not s.sorted then begin
    let view = Array.sub s.values 0 s.used in
    Array.sort Float.compare view;
    Array.blit view 0 s.values 0 s.used;
    s.sorted <- true
  end

let percentile s p =
  if s.used = 0 then Float.nan
  else begin
    ensure_sorted s;
    let rank = p *. float_of_int (s.used - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (s.used - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (s.values.(lo) *. (1.0 -. frac)) +. (s.values.(hi) *. frac)
  end

let sample_max s =
  if s.used = 0 then Float.nan
  else begin
    ensure_sorted s;
    s.values.(s.used - 1)
  end

let read_sample t name = sample t name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
  |> List.sort String.compare

let pp formatter t =
  let rows =
    List.map
      (fun name ->
        match Hashtbl.find t.table name with
        | Counter c -> (name, Printf.sprintf "%d" c.count)
        | Gauge g -> (name, Printf.sprintf "%d (gauge)" !g)
        | Sample s ->
            ( name,
              Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f"
                s.used (mean s) (percentile s 0.5) (percentile s 0.99)
                (sample_max s) ))
      (names t)
  in
  let width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 rows
  in
  List.iter
    (fun (name, value) ->
      Format.fprintf formatter "%-*s  %s@." width name value)
    rows
