(** Deterministic pseudo-random number generation for workloads and fault
    injection.

    Implemented as splitmix64, which is fast, has a 64-bit state that can be
    split into statistically independent streams, and — unlike the stdlib
    [Random] module — guarantees the same sequence on every OCaml version.
    Determinism matters: every experiment in the reproduction must be
    re-runnable bit-for-bit from its seed. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. Use one split
    stream per subsystem so that adding draws in one subsystem does not
    perturb another. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in \[lo, hi\] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (for inter-arrival
    times). *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] is a Zipf-skewed value in \[0, n) — used for skewed
    record access in contention experiments. [theta = 0.] is uniform. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen array element. Requires a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
