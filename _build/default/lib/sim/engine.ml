type event = {
  time : Sim_time.t;
  seq : int;
  mutable cancelled : bool;
  action : unit -> unit;
}

type handle = event

type t = {
  mutable clock : Sim_time.t;
  queue : event Heap.t;
  mutable next_seq : int;
  root_rng : Rng.t;
  mutable executed : int;
}

let compare_events a b =
  match Sim_time.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let create ?(seed = 42) () =
  {
    clock = Sim_time.zero;
    queue = Heap.create ~cmp:compare_events;
    next_seq = 0;
    root_rng = Rng.create ~seed;
    executed = 0;
  }

let now t = t.clock

let rng t = t.root_rng

let schedule_at t time action =
  if Sim_time.compare time t.clock < 0 then
    invalid_arg "Engine.schedule_at: time is in the past";
  let event = { time; seq = t.next_seq; cancelled = false; action } in
  t.next_seq <- t.next_seq + 1;
  Heap.add t.queue event;
  event

let schedule_after t span action =
  if span < 0 then invalid_arg "Engine.schedule_after: negative span";
  schedule_at t (Sim_time.add t.clock span) action

let cancel event = event.cancelled <- true

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some event ->
      (* Cancelled events are reaped without advancing the clock: a
         cancelled timeout never happened. *)
      if not event.cancelled then begin
        t.clock <- event.time;
        t.executed <- t.executed + 1;
        event.action ()
      end;
      true

let run ?until t =
  let continue () =
    match Heap.peek t.queue with
    | None -> false
    | Some event -> (
        match until with
        | None -> true
        | Some limit -> Sim_time.compare event.time limit <= 0)
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when Sim_time.compare t.clock limit < 0 -> t.clock <- limit
  | Some _ | None -> ()

let run_for t span = run ~until:(Sim_time.add t.clock span) t

let pending t = Heap.length t.queue

let events_executed t = t.executed
