type t = int

type span = int

let zero = 0

let microseconds us = us

let milliseconds ms = ms * 1_000

let seconds s = s * 1_000_000

let minutes m = m * 60_000_000

let of_seconds_float s = int_of_float ((s *. 1e6) +. 0.5)

let to_seconds_float us = float_of_int us /. 1e6

let add t span = t + span

let diff a b = a - b

let compare = Int.compare

let pp formatter t =
  if t < 1_000 then Format.fprintf formatter "%dus" t
  else if t < 1_000_000 then
    Format.fprintf formatter "%.3fms" (float_of_int t /. 1e3)
  else Format.fprintf formatter "%.3fs" (float_of_int t /. 1e6)

let to_string t = Format.asprintf "%a" pp t
