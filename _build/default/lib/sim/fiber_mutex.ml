type t = {
  mutable held : bool;
  mutable queue : unit Fiber.resume list; (* oldest first *)
}

let create () = { held = false; queue = [] }

let rec lock t =
  if not t.held then t.held <- true
  else begin
    match Fiber.suspend (fun resume -> t.queue <- t.queue @ [ resume ]) with
    | () -> ()
    | exception e ->
        (* Ownership was handed to this fiber as it was being killed: pass
           it on before propagating. *)
        unlock t;
        raise e
  end

and unlock t =
  if not t.held then invalid_arg "Fiber_mutex.unlock: not locked";
  match t.queue with
  | [] -> t.held <- false
  | resume :: rest ->
      t.queue <- rest;
      (* Ownership passes directly to the next waiter. *)
      resume (Ok ())

let with_lock t f =
  lock t;
  match f () with
  | value ->
      unlock t;
      value
  | exception e ->
      unlock t;
      raise e

let locked t = t.held

let waiters t = List.length t.queue
