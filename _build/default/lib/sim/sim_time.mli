(** Simulated time.

    Time is an absolute instant measured in integer microseconds since the
    start of the simulation; [span] is a duration in the same unit. Integer
    microseconds keep the simulation fully deterministic (no floating-point
    accumulation) while resolving every latency in the modelled 1981 hardware
    (bus transfers are a few microseconds, disc accesses tens of
    milliseconds). *)

type t = int
(** Absolute instant, microseconds since simulation start. *)

type span = int
(** Duration in microseconds. *)

val zero : t

val microseconds : int -> span
val milliseconds : int -> span
val seconds : int -> span
val minutes : int -> span

val of_seconds_float : float -> span
(** [of_seconds_float s] is [s] seconds rounded to the nearest microsecond. *)

val to_seconds_float : span -> float

val add : t -> span -> t
val diff : t -> t -> span

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Renders with an adaptive unit, e.g. ["17.250ms"], ["2.000s"]. *)

val to_string : t -> string
