type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit native int positively. *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let int_in_range t ~lo ~hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p = float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

(* Zipf by inverse-CDF over precomputed harmonic weights would need caching;
   the rejection-free "quick" method below recomputes the normalizer, which is
   acceptable because workload generators draw it once per request against
   small n, and contention experiments use n <= a few thousand. *)
let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0.0 then int t n
  else begin
    let normalizer = ref 0.0 in
    for i = 1 to n do
      normalizer := !normalizer +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    let target = float t !normalizer in
    let rec search i acc =
      if i > n then n - 1
      else
        let acc = acc +. (1.0 /. Float.pow (float_of_int i) theta) in
        if acc >= target then i - 1 else search (i + 1) acc
    in
    search 1 0.0
  end

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
