type entry = { time : Sim_time.t; subsystem : string; message : string }

type t = {
  engine : Engine.t;
  capacity : int;
  echo : bool;
  mutable ring : entry list; (* newest first, trimmed to capacity *)
  mutable size : int;
  enabled_tags : (string, unit) Hashtbl.t;
}

let create ?(capacity = 4096) ?(echo = false) engine =
  {
    engine;
    capacity;
    echo;
    ring = [];
    size = 0;
    enabled_tags = Hashtbl.create 16;
  }

let enable t tag = Hashtbl.replace t.enabled_tags tag ()

let disable t tag = Hashtbl.remove t.enabled_tags tag

let enabled t tag =
  Hashtbl.mem t.enabled_tags tag || Hashtbl.mem t.enabled_tags "*"

let pp_entry formatter entry =
  Format.fprintf formatter "[%a] %-10s %s" Sim_time.pp entry.time
    entry.subsystem entry.message

let record t subsystem message =
  let entry = { time = Engine.now t.engine; subsystem; message } in
  t.ring <- entry :: t.ring;
  t.size <- t.size + 1;
  if t.size > t.capacity then begin
    (* Drop the oldest half in one pass to amortize the trim. *)
    let keep = t.capacity / 2 in
    t.ring <- List.filteri (fun i _ -> i < keep) t.ring;
    t.size <- keep
  end;
  if t.echo then Format.eprintf "%a@." pp_entry entry

let emit t subsystem fmt =
  if enabled t subsystem then
    Format.kasprintf (fun message -> record t subsystem message) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t = List.rev t.ring

let find t ~subsystem ~substring =
  let matches entry =
    String.equal entry.subsystem subsystem
    &&
    let len_m = String.length entry.message
    and len_s = String.length substring in
    let rec scan i =
      if i + len_s > len_m then false
      else if String.sub entry.message i len_s = substring then true
      else scan (i + 1)
    in
    scan 0
  in
  List.find_opt matches (entries t)

let count t ~subsystem =
  List.length
    (List.filter (fun e -> String.equal e.subsystem subsystem) (entries t))

let clear t =
  t.ring <- [];
  t.size <- 0
