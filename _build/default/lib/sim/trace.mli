(** In-simulation event tracing.

    Each engine run keeps a bounded ring of trace entries (simulated time,
    subsystem tag, message). Tests assert on the ring; humans can echo it to
    stderr. Tracing is cheap when disabled: the [emit] formatting thunk is
    only forced for enabled subsystems. *)

type t

type entry = { time : Sim_time.t; subsystem : string; message : string }

val create : ?capacity:int -> ?echo:bool -> Engine.t -> t
(** [create engine] is a trace ring of [capacity] entries (default 4096).
    With [echo:true], entries are also printed to stderr as they happen. *)

val enable : t -> string -> unit
(** Enable a subsystem tag. The pseudo-tag ["*"] enables everything. *)

val disable : t -> string -> unit

val enabled : t -> string -> bool

val emit : t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [emit t subsystem fmt ...] records an entry if [subsystem] is enabled. *)

val entries : t -> entry list
(** Recorded entries, oldest first. *)

val find : t -> subsystem:string -> substring:string -> entry option
(** First entry of [subsystem] whose message contains [substring]. *)

val count : t -> subsystem:string -> int

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
