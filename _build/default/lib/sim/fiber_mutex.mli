(** A FIFO mutex for fibers.

    Used to serialize data access inside a DISCPROCESS (and the baseline
    manager): a structured-file operation spans several block I/Os, each of
    which suspends the fiber, and interleaving two mutations of the same
    structure between those suspensions would lose updates — the real
    DISCPROCESS performs data operations one at a time. Lock-manager waits
    happen *before* taking the mutex, so lock queues never hold up the
    volume. *)

type t

val create : unit -> t

val lock : t -> unit
(** Acquire, suspending the calling fiber FIFO behind current waiters. *)

val unlock : t -> unit
(** Release; wakes the next waiter. Raises [Invalid_argument] if not
    locked. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f] under the mutex, releasing on any exit. *)

val locked : t -> bool

val waiters : t -> int
