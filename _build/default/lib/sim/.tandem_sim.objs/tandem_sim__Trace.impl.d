lib/sim/trace.ml: Engine Format Hashtbl List Sim_time String
