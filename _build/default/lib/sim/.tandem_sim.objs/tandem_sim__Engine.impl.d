lib/sim/engine.ml: Heap Int Rng Sim_time
