lib/sim/fiber_mutex.ml: Fiber List
