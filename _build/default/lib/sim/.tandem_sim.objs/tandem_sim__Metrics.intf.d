lib/sim/metrics.mli: Format Sim_time
