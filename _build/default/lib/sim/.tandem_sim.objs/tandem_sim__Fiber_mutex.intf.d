lib/sim/fiber_mutex.mli:
