lib/sim/fiber.mli: Engine Sim_time
