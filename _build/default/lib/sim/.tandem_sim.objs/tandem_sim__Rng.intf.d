lib/sim/rng.mli:
