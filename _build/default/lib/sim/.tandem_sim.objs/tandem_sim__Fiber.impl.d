lib/sim/fiber.ml: Effect Engine
