lib/sim/sim_time.ml: Format Int
