lib/sim/heap.mli:
