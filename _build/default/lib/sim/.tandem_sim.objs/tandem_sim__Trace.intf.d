lib/sim/trace.mli: Engine Format Sim_time
