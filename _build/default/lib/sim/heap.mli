(** Imperative binary min-heap, used as the simulation event queue.

    Elements are ordered by the comparison function supplied at creation
    time; ties are broken by insertion order only if the comparison says the
    elements are equal and the caller encoded a sequence number in them (the
    heap itself is not stable). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** [add t x] inserts [x]. O(log n). *)

val peek : 'a t -> 'a option
(** [peek t] is the minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** [pop t] removes and returns the minimum element. O(log n). *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list t] is all elements in unspecified order (for inspection). *)
