(** Measurement registry for experiments.

    Counters count events (transactions committed, messages sent, forced disc
    writes); gauges expose a current level (lock-table size, suspense-file
    backlog); samples accumulate a distribution (latencies) and report mean
    and percentiles. Every experiment table in the benchmark harness is
    printed from one of these registries, so the same code path feeds tests
    and benches. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** [counter t name] is the counter registered under [name], creating it at
    zero on first use. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val read_counter : t -> string -> int
(** Value of the named counter; [0] if never touched. *)

(** {1 Gauges} *)

val set_gauge : t -> string -> int -> unit

val read_gauge : t -> string -> int

(** {1 Samples (distributions)} *)

type sample

val sample : t -> string -> sample

val observe : sample -> float -> unit

val observe_span : t -> string -> Sim_time.span -> unit
(** Record a duration in milliseconds under the named sample. *)

val sample_count : sample -> int

val mean : sample -> float
(** [nan] when empty. *)

val percentile : sample -> float -> float
(** [percentile s 0.99] etc.; [nan] when empty. *)

val sample_max : sample -> float

val read_sample : t -> string -> sample

(** {1 Reporting} *)

val names : t -> string list
(** All registered metric names, sorted. *)

val pp : Format.formatter -> t -> unit
(** Render the whole registry as an aligned table. *)
