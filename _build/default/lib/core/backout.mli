(** The BACKOUTPROCESS: a process-pair that backs transactions out using
    their before-images from the node's audit trails.

    Backout is a purely local affair — every audit image for records on this
    node is in a trail on this node, so no network communication is needed
    (the property the distributed-audit-trail design buys). Images are
    undone newest-first per trail, through the owning volume's
    DISCPROCESS. *)

val spawn :
  net:Tandem_os.Net.t ->
  state:Tmf_state.node_state ->
  primary_cpu:Tandem_os.Ids.cpu_id ->
  backup_cpu:Tandem_os.Ids.cpu_id ->
  unit

val request :
  Tandem_os.Net.t ->
  self:Tandem_os.Process.t ->
  node:Tandem_os.Ids.node_id ->
  Transid.t ->
  (int, string) result
(** Ask the node's BACKOUTPROCESS to back the transaction out; returns the
    number of images undone. *)
