type t = {
  home : Tandem_os.Ids.node_id;
  cpu : Tandem_os.Ids.cpu_id;
  seq : int;
}

let make ~home ~cpu ~seq = { home; cpu; seq }

let home t = t.home

let equal a b = a.home = b.home && a.cpu = b.cpu && a.seq = b.seq

let compare a b =
  match Int.compare a.home b.home with
  | 0 -> (
      match Int.compare a.cpu b.cpu with
      | 0 -> Int.compare a.seq b.seq
      | c -> c)
  | c -> c

let to_string t = Printf.sprintf "%d.%d.%d" t.home t.cpu t.seq

let of_string s =
  match String.split_on_char '.' s with
  | [ home; cpu; seq ] -> (
      match (int_of_string_opt home, int_of_string_opt cpu, int_of_string_opt seq) with
      | Some home, Some cpu, Some seq -> Some { home; cpu; seq }
      | _ -> None)
  | _ -> None

let pp formatter t = Format.pp_print_string formatter (to_string t)
