(** Transaction identifiers.

    A transid is a sequence number, qualified by the processor in which
    BEGIN-TRANSACTION was called, qualified by the network node that
    originated the transaction — its *home* node. It identifies the
    transaction's update group network-wide. *)

type t = {
  home : Tandem_os.Ids.node_id;
  cpu : Tandem_os.Ids.cpu_id;
  seq : int;
}

val make : home:Tandem_os.Ids.node_id -> cpu:Tandem_os.Ids.cpu_id -> seq:int -> t

val home : t -> Tandem_os.Ids.node_id

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : t -> string
(** Rendered as ["node.cpu.seq"]; this string form is what the audit and
    lock layers carry. *)

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
