type t = Active | Ending | Ended | Aborting | Aborted

let legal_transition from into =
  match (from, into) with
  | Active, Ending
  | Active, Aborting
  | Ending, Ended
  | Ending, Aborting
  | Aborting, Aborted -> true
  | (Active | Ending | Ended | Aborting | Aborted), _ -> false

let is_terminal = function
  | Ended | Aborted -> true
  | Active | Ending | Aborting -> false

let to_string = function
  | Active -> "active"
  | Ending -> "ending"
  | Ended -> "ended"
  | Aborting -> "aborting"
  | Aborted -> "aborted"

let pp formatter t = Format.pp_print_string formatter (to_string t)

let all = [ Active; Ending; Ended; Aborting; Aborted ]
