(** The transaction state machine of Figure 3.

    [Active] after BEGIN-TRANSACTION; [Ending] once END-TRANSACTION starts
    phase one (audit records being written); [Ended] once the commit record
    is in the Monitor Audit Trail (phase two releases locks); [Aborting]
    once the decision to back out is taken; [Aborted] once backout is
    complete. "Ending"/"Aborting" and "Ended"/"Aborted" are parallel states.
    After [Ended] or [Aborted] completes, the transid leaves the system. *)

type t = Active | Ending | Ended | Aborting | Aborted

val legal_transition : t -> t -> bool
(** Exactly the arcs of Figure 3:
    Active→Ending, Active→Aborting (failure/abort),
    Ending→Ended (phase two), Ending→Aborting (commit rejected),
    Aborting→Aborted (backout done). *)

val is_terminal : t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val all : t list
