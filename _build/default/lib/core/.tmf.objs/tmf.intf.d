lib/core/tmf.mli: Backout Participant Rollforward Tandem_audit Tandem_disk Tandem_os Tmf_state Tmp Transid Tx_state Tx_table
