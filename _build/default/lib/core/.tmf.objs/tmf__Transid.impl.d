lib/core/transid.ml: Format Int Printf String Tandem_os
