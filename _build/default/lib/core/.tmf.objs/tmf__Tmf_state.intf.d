lib/core/tmf_state.mli: Hashtbl Participant Tandem_audit Tandem_disk Tandem_os Tandem_sim Transid Tx_table
