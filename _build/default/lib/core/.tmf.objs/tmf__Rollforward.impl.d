lib/core/rollforward.ml: Audit_record Audit_trail Format Hashtbl List Monitor_trail Net Node String Tandem_audit Tandem_os Tmf_state Tmp Transid
