lib/core/tx_table.mli: Tandem_os Transid Tx_state
