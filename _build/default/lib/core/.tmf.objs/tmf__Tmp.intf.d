lib/core/tmp.mli: Tandem_audit Tandem_os Tandem_sim Tmf_state Transid
