lib/core/backout.ml: Audit_record Audit_trail Cpu Format Hashtbl Hw_config List Message Metrics Net Participant Process Process_pair Rpc Tandem_audit Tandem_os Tandem_sim Tmf_state Transid
