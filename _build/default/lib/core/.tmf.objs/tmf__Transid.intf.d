lib/core/transid.mli: Format Tandem_os
