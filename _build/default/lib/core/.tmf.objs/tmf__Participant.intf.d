lib/core/participant.mli: Tandem_audit Tandem_os Transid
