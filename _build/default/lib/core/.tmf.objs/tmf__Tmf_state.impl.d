lib/core/tmf_state.ml: Array Hashtbl List Participant String Tandem_audit Tandem_os Tandem_sim Transid Tx_table
