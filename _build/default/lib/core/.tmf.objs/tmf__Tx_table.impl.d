lib/core/tx_table.ml: Array Cpu Engine Hashtbl Hw_config List Metrics Node Option Printf Tandem_os Tandem_sim Transid Tx_state
