lib/core/tx_state.mli: Format
