lib/core/participant.ml: Tandem_audit Tandem_os Transid
