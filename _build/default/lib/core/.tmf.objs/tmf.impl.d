lib/core/tmf.ml: Array Audit_process Audit_trail Backout Hashtbl Ids Monitor_trail Net Node Participant Printf Rollforward Tandem_audit Tandem_os Tandem_sim Tmf_state Tmp Transid Tx_state Tx_table
