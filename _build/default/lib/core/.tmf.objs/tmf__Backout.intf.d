lib/core/backout.mli: Tandem_os Tmf_state Transid
