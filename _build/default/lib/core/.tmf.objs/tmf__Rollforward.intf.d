lib/core/rollforward.mli: Format Tandem_audit Tandem_os Tmf_state Transid
