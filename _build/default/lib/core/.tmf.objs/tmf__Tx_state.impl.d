lib/core/tx_state.ml: Format
