open Tandem_disk

(* A closed or current audit file: records ascend within [first_seq ..]. *)
type audit_file = { file_number : int; mutable records : Audit_record.t list (* newest first *) }

type t = {
  volume : Volume.t;
  daemon : Force_daemon.t;
  trail_name : string;
  records_per_file : int;
  mutable files : audit_file list; (* newest first *)
  mutable next_seq : int;
  mutable forced_hwm : int; (* highest sequence on disc *)
}

let create volume ~name ?(records_per_file = 512) () =
  if records_per_file < 1 then
    invalid_arg "Audit_trail.create: records_per_file must be positive";
  {
    volume;
    daemon = Force_daemon.create volume;
    trail_name = name;
    records_per_file;
    files = [ { file_number = 0; records = [] } ];
    next_seq = 0;
    forced_hwm = -1;
  }

let name t = t.trail_name

let current_file t =
  match t.files with
  | file :: _ -> file
  | [] -> assert false

let append t ~transid image =
  let sequence = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let record = { Audit_record.sequence; transid; image } in
  let file = current_file t in
  file.records <- record :: file.records;
  if List.length file.records >= t.records_per_file then
    t.files <-
      { file_number = file.file_number + 1; records = [] } :: t.files;
  sequence

let force t =
  if t.forced_hwm < t.next_seq - 1 then begin
    (* Group commit: concurrent forcers share one physical write. *)
    let target = t.next_seq - 1 in
    Force_daemon.force t.daemon;
    t.forced_hwm <- max t.forced_hwm target
  end

let forced_up_to t = t.forced_hwm

let next_sequence t = t.next_seq

let all_records t =
  List.fold_left
    (fun acc file -> List.rev_append (List.rev file.records) acc)
    []
    (List.rev t.files)
  |> List.rev
(* files newest-first, records newest-first: the fold above ends ascending. *)

let records_for t ~transid =
  List.filter
    (fun r -> String.equal r.Audit_record.transid transid)
    (all_records t)

let records_from t ~sequence =
  List.filter
    (fun r ->
      r.Audit_record.sequence >= sequence
      && r.Audit_record.sequence <= t.forced_hwm)
    (all_records t)

let crash t =
  (* Drop every record above the forced high-water mark. *)
  List.iter
    (fun file ->
      file.records <-
        List.filter
          (fun r -> r.Audit_record.sequence <= t.forced_hwm)
          file.records)
    t.files;
  t.next_seq <- t.forced_hwm + 1

let file_count t = List.length t.files

let purge_files_before t ~sequence =
  let keep, purge =
    List.partition
      (fun file ->
        match file.records with
        | [] -> true (* current, empty *)
        | newest :: _ -> newest.Audit_record.sequence >= sequence)
      t.files
  in
  t.files <- (if keep = [] then [ { file_number = 0; records = [] } ] else keep);
  List.length purge

let total_bytes t =
  List.fold_left
    (fun acc file ->
      List.fold_left
        (fun acc r -> acc + Audit_record.size_bytes r)
        acc file.records)
    0 t.files
