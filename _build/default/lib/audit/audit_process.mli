(** The AUDITPROCESS: a process-pair that owns one audit trail and serves
    two requests — append a batch of images, and force the trail to disc.

    All audited volumes configured onto the same trail share one
    AUDITPROCESS; DISCPROCESSes ship their per-transaction image batches
    here during phase one (or when their local buffers fill), and the commit
    coordinator asks for the force that ends phase one. *)

type t

val spawn :
  net:Tandem_os.Net.t ->
  node:Tandem_os.Node.t ->
  trail:Audit_trail.t ->
  name:string ->
  primary_cpu:Tandem_os.Ids.cpu_id ->
  backup_cpu:Tandem_os.Ids.cpu_id ->
  t

val name : t -> string

val trail : t -> Audit_trail.t

val is_up : t -> bool

(** {1 Client side} *)

val append_images :
  Tandem_os.Net.t ->
  self:Tandem_os.Process.t ->
  node:Tandem_os.Ids.node_id ->
  name:string ->
  transid:string ->
  Audit_record.image list ->
  (unit, Tandem_os.Rpc.error) result
(** Ship a batch of audit images to the named AUDITPROCESS and wait for the
    acknowledgement. *)

val force :
  Tandem_os.Net.t ->
  self:Tandem_os.Process.t ->
  node:Tandem_os.Ids.node_id ->
  name:string ->
  (unit, Tandem_os.Rpc.error) result
(** Ask the named AUDITPROCESS to force its trail (phase one). *)
