lib/audit/audit_process.mli: Audit_record Audit_trail Tandem_os
