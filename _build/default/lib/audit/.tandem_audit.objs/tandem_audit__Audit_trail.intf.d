lib/audit/audit_trail.mli: Audit_record Tandem_disk
