lib/audit/audit_record.mli: Format Tandem_db
