lib/audit/monitor_trail.mli: Format Tandem_disk
