lib/audit/audit_process.ml: Audit_record Audit_trail Cpu Hw_config List Message Net Process Process_pair Rpc Tandem_os
