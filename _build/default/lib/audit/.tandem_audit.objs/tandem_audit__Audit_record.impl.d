lib/audit/audit_record.ml: Format String Tandem_db
