lib/audit/monitor_trail.ml: Force_daemon Format Hashtbl List Tandem_disk Volume
