lib/audit/audit_trail.ml: Audit_record Force_daemon List String Tandem_disk Volume
