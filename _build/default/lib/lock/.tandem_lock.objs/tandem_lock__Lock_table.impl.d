lib/lock/lock_table.ml: Engine Fiber Format Hashtbl List Metrics String Tandem_sim
