lib/lock/lock_table.mli: Format Tandem_sim
