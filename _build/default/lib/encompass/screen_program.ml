exception Restart_transaction of string

exception Abort_program of string

type verbs = {
  begin_transaction : unit -> unit;
  end_transaction : unit -> unit;
  abort_transaction : reason:string -> unit;
  restart_transaction : reason:string -> unit;
  send : server_class:string -> string -> string;
  current_transid : unit -> Tmf.Transid.t option;
}

type t = { program_name : string; run : verbs -> string -> string }

let make ~name run = { program_name = name; run }

let transaction ~name body =
  {
    program_name = name;
    run =
      (fun verbs input ->
        verbs.begin_transaction ();
        let output = body verbs input in
        verbs.end_transaction ();
        output);
  }
