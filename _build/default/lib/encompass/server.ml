open Tandem_os

type ctx = {
  server_process : Process.t;
  files : File_client.t;
  transid : Tmf.Transid.t option;
}

type server_error = Transient of string | Rejected of string

type handler = ctx -> string -> (string, server_error) result

type Message.payload +=
  | Server_request of { transid : string option; body : string }
  | Server_reply of (string, server_error) result

let map_file_error error =
  let text = Format.asprintf "%a" File_client.pp_error error in
  if File_client.is_transient error then Transient text else Rejected text

type t = {
  net : Net.t;
  files : File_client.t;
  node : Node.t;
  name : string;
  handler : handler;
  mutable members : Process.t array;  (* slot-indexed: names are stable *)
  mutable served : int;
}

let member_name t index = Printf.sprintf "%s-%d" t.name index

let server_body t process =
  let config = Net.config t.net in
  let rec loop () =
    let message = Process.receive process in
    (match message.Message.payload with
    | Server_request { transid; body } ->
        Cpu.consume (Process.cpu process) config.Hw_config.cpu_server_cost;
        let ctx =
          {
            server_process = process;
            files = t.files;
            transid = Option.bind transid Tmf.Transid.of_string;
          }
        in
        let result = t.handler ctx body in
        t.served <- t.served + 1;
        Rpc.reply t.net ~self:process ~to_:message (Server_reply result)
    | _ -> ());
    loop ()
  in
  loop ()

(* Spawn (or respawn) the member for a slot; the name is the slot's, so a
   replacement is reached by the same requester addressing. *)
let spawn_slot t slot =
  let up = Node.up_cpus t.node in
  match up with
  | [] -> None
  | _ ->
      let cpu = List.nth up (slot mod List.length up) in
      Some
        (Node.spawn t.node ~name:(member_name t slot) ~cpu (fun process ->
             server_body t process))

let create_class ~net ~files ~node ~name ~handler ~initial () =
  let t =
    { net; files; node; name; handler; members = [||]; served = 0 }
  in
  t.members <-
    Array.init initial (fun slot ->
        match spawn_slot t slot with
        | Some process -> process
        | None -> invalid_arg "Server.create_class: no up processor");
  (* Application control: a member lost to a processor failure is replaced
     on a surviving processor, keeping the class at strength. *)
  Node.on_cpu_down node (fun _failed ->
      Array.iteri
        (fun slot process ->
          if not (Process.is_alive process) then
            match spawn_slot t slot with
            | Some replacement -> t.members.(slot) <- replacement
            | None -> ())
        t.members);
  t

let class_name t = t.name

let node_id t = Node.id t.node

let member_count t = Array.length t.members

let set_members t target =
  if target < 0 then invalid_arg "Server.set_members: negative size";
  let current = Array.length t.members in
  if target < current then begin
    for slot = target to current - 1 do
      Process.kill t.members.(slot);
      Node.unregister_name t.node (member_name t slot)
    done;
    t.members <- Array.sub t.members 0 target
  end
  else if target > current then begin
    let extra =
      Array.init (target - current) (fun i ->
          match spawn_slot t (current + i) with
          | Some process -> process
          | None -> invalid_arg "Server.set_members: no up processor")
    in
    t.members <- Array.append t.members extra
  end

let requests_served t = t.served

let queued_requests t =
  Array.fold_left
    (fun acc process ->
      if Process.is_alive process then
        acc + Mailbox.pending (Process.mailbox process)
      else acc)
    0 t.members

let enable_autoscale t ~min_members ~max_members
    ?(interval = Tandem_sim.Sim_time.seconds 1) () =
  if min_members < 1 || max_members < min_members then
    invalid_arg "Server.enable_autoscale: bad bounds";
  if Array.length t.members < min_members then set_members t min_members;
  let monitor_cpu =
    match Node.up_cpus t.node with cpu :: _ -> cpu | [] -> 0
  in
  ignore
    (Node.spawn t.node ~name:(t.name ^ "-MON") ~cpu:monitor_cpu
       (fun _process ->
         let rec watch () =
           Tandem_sim.Fiber.sleep (Net.engine t.net) interval;
           let members = Array.length t.members in
           let backlog = queued_requests t in
           (* More than two queued requests per member: grow. Completely
              idle: shrink one at a time. *)
           if backlog > 2 * members && members < max_members then begin
             set_members t (min max_members (members + 1));
             Tandem_sim.Metrics.incr
               (Tandem_sim.Metrics.counter (Net.metrics t.net)
                  "encompass.servers_created")
           end
           else if backlog = 0 && members > min_members then begin
             set_members t (members - 1);
             Tandem_sim.Metrics.incr
               (Tandem_sim.Metrics.counter (Net.metrics t.net)
                  "encompass.servers_deleted")
           end;
           watch ()
         in
         watch ()))

(* ------------------------------------------------------------------ *)

let send net ~self ~tmf ?transid ~node ~class_name ~members body =
  if members < 1 then Error (Rejected "empty server class")
  else begin
    let from_node = (Process.pid self).Ids.node in
    let propagate =
      match transid with
      | None -> Ok ()
      | Some transid -> (
          match Tmf.ensure_known tmf ~self ~from_node ~to_node:node transid with
          | Ok () -> Ok ()
          | Error `Unreachable -> Error (Transient "server node unreachable"))
    in
    match propagate with
    | Error _ as e -> e
    | Ok () -> (
        let member = Net.fresh_corr net mod members in
        let payload =
          Server_request
            { transid = Option.map Tmf.Transid.to_string transid; body }
        in
        match
          (* No transparent retry: a server request is not idempotent, so a
             lost reply must surface as a transient failure and be cured by
             RESTART-TRANSACTION, never by silent re-execution. *)
          Rpc.call_name net ~self ~node
            ~name:(Printf.sprintf "%s-%d" class_name member)
            ~timeout:(Tandem_sim.Sim_time.seconds 30) ~retries:0 payload
        with
        | Ok (Server_reply result) -> result
        | Ok _ -> Error (Rejected "protocol violation")
        | Error e -> Error (Transient (Format.asprintf "%a" Rpc.pp_error e)))
  end
