(** The requester's view of the data base — the File System role.

    Operations are routed by the data dictionary: the key picks the
    partition, the partition names the node and volume, and the request goes
    to that volume's DISCPROCESS by name (so process-pair takeovers are
    invisible here). When a transid is supplied it is appended to the
    request automatically, and before the first transmission of that transid
    to a new node the remote-transaction-begin exchange runs — exactly the
    File System behaviour the paper describes. *)

type t

type error =
  | Data_error of Dp_protocol.error
  | Path_error of Tandem_os.Rpc.error  (** No reply (even after retries). *)
  | Tx_unreachable  (** Remote begin failed: participant node unreachable. *)

val pp_error : Format.formatter -> error -> unit

val is_transient : error -> bool
(** Errors that RESTART-TRANSACTION is the right answer to (lock timeout,
    path failures, transaction rejected). *)

val create :
  net:Tandem_os.Net.t ->
  tmf:Tmf.t ->
  dictionary:Tandem_db.Schema.t ->
  ?lock_timeout:Tandem_sim.Sim_time.span ->
  unit ->
  t

val dictionary : t -> Tandem_db.Schema.t

val read :
  t ->
  self:Tandem_os.Process.t ->
  ?transid:Tmf.Transid.t ->
  ?lock:bool ->
  file:string ->
  Tandem_db.Key.t ->
  (string option, error) result
(** [lock] defaults to [true] when a transid is present — locks on existing
    records are acquired at read time. *)

val insert :
  t ->
  self:Tandem_os.Process.t ->
  ?transid:Tmf.Transid.t ->
  file:string ->
  Tandem_db.Key.t ->
  string ->
  (unit, error) result

val update :
  t ->
  self:Tandem_os.Process.t ->
  ?transid:Tmf.Transid.t ->
  file:string ->
  Tandem_db.Key.t ->
  string ->
  (unit, error) result

val delete :
  t ->
  self:Tandem_os.Process.t ->
  ?transid:Tmf.Transid.t ->
  file:string ->
  Tandem_db.Key.t ->
  (unit, error) result

val append :
  t ->
  self:Tandem_os.Process.t ->
  ?transid:Tmf.Transid.t ->
  file:string ->
  string ->
  (Tandem_db.Key.t, error) result
(** Entry-sequenced append; returns the assigned entry key. *)

val next_after :
  t ->
  self:Tandem_os.Process.t ->
  ?transid:Tmf.Transid.t ->
  file:string ->
  Tandem_db.Key.t ->
  ((Tandem_db.Key.t * string) option, error) result
(** Next record in key order — crosses partition boundaries. *)

val lookup_index :
  t ->
  self:Tandem_os.Process.t ->
  ?transid:Tmf.Transid.t ->
  file:string ->
  index:string ->
  Tandem_db.Key.t ->
  (Tandem_db.Key.t list, error) result
(** Multi-key access: primary keys of records whose alternate key matches,
    gathered across every partition (each maintains the index entries for
    its own records). *)

val lock_file :
  t ->
  self:Tandem_os.Process.t ->
  transid:Tmf.Transid.t ->
  file:string ->
  (unit, error) result
(** File-granularity lock on every partition of the file. *)
