(** Application servers.

    A server is context-free and single-threaded: read the transaction
    request message, perform the data-base function, reply. Servers are
    grouped into classes; requesters address a class and the send is
    dispatched to one member. The class can be grown or shrunk while
    running — the application-control function that keeps response time
    under changing load (F2 scales it with the processor count). *)

type ctx = {
  server_process : Tandem_os.Process.t;
  files : File_client.t;
  transid : Tmf.Transid.t option;
      (** The current process transid, taken from the request message. *)
}

type server_error =
  | Transient of string
      (** The request failed for a reason a transaction restart cures (lock
          timeout, path failure). *)
  | Rejected of string  (** The application refuses the request. *)

type handler = ctx -> string -> (string, server_error) result

val map_file_error : File_client.error -> server_error
(** The conventional mapping: transient errors ask for
    RESTART-TRANSACTION, the rest reject the request. *)

type t
(** A server class. *)

val create_class :
  net:Tandem_os.Net.t ->
  files:File_client.t ->
  node:Tandem_os.Node.t ->
  name:string ->
  handler:handler ->
  initial:int ->
  unit ->
  t
(** Start [initial] members, placed round-robin over the node's up
    processors, registered as ["<name>-0"], ["<name>-1"], … *)

val class_name : t -> string

val node_id : t -> Tandem_os.Ids.node_id

val member_count : t -> int

val set_members : t -> int -> unit
(** Grow (spawn) or shrink (stop) the class to the given size. *)

val enable_autoscale :
  t ->
  min_members:int ->
  max_members:int ->
  ?interval:Tandem_sim.Sim_time.span ->
  unit ->
  unit
(** Application control: watch the class's request backlog and grow or
    shrink the pool within the bounds — "dynamic creation and deletion of
    application server processes to ensure good response time and
    utilization of resources as the workload changes". The watcher runs
    forever; use in runs driven with a time bound. *)

val queued_requests : t -> int
(** Requests waiting in members' mailboxes right now. *)

val requests_served : t -> int

(** {1 Requester side} *)

val send :
  Tandem_os.Net.t ->
  self:Tandem_os.Process.t ->
  tmf:Tmf.t ->
  ?transid:Tmf.Transid.t ->
  node:Tandem_os.Ids.node_id ->
  class_name:string ->
  members:int ->
  string ->
  (string, server_error) result
(** The SEND verb's transport: propagate the transid to the server's node,
    pick a member, and exchange request/reply. Path failures surface as
    [Transient]. *)
