(** The DISCPROCESS: an I/O process-pair per logical disc volume.

    It is the single point of control for its volume: it performs all
    structured-file accesses, keeps the lock table for the records and files
    resident there (concurrency control is decentralized — there is no
    central lock manager), generates before/after audit images for updates
    to audited files, and checkpoints every intention to its backup before
    acting, which is what replaces the Write-Ahead-Log force (E6 measures
    the difference).

    Transactional requests are validated against the processor's local
    transaction state table: work is accepted only while the transid is in
    active state. Requests wait for record locks inside their own fibers, so
    a lock queue never blocks the volume for other requests. *)

type t

val spawn :
  net:Tandem_os.Net.t ->
  tmf:Tmf.t ->
  node:Tandem_os.Node.t ->
  volume:Tandem_disk.Volume.t ->
  name:string ->
  trail:string ->
  primary_cpu:Tandem_os.Ids.cpu_id ->
  backup_cpu:Tandem_os.Ids.cpu_id ->
  ?cache_capacity:int ->
  unit ->
  t
(** Spawn the pair, register its name, and register it with TMF as a
    participant feeding the named audit trail. *)

val name : t -> string

val node_id : t -> Tandem_os.Ids.node_id

val store : t -> Tandem_db.Store.t

val lock_table : t -> Tandem_lock.Lock_table.t

val add_file : t -> Tandem_db.Schema.file_def -> Tandem_db.File.t
(** Create (this volume's partition of) a file. *)

val file : t -> string -> Tandem_db.File.t option

val is_up : t -> bool

val audit_buffer_depth : t -> int
(** Images generated but not yet shipped to the audit trail. *)

val rollforward_target : t -> Tmf.Rollforward.target
(** Snapshot/restore/redo hooks over this volume's store for ROLLFORWARD. *)

val simulate_total_failure : t -> unit
(** Drop the volume's volatile state (cache, current images, buffered
    audit, locks) down to what was physically flushed — the data-level
    effect of losing both processors. *)
