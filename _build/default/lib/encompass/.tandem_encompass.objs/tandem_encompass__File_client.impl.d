lib/encompass/file_client.ml: Dp_protocol Format Ids List Net Option Process Rpc Schema Sim_time Tandem_db Tandem_os Tandem_sim Tmf
