lib/encompass/tcp.ml: Array Engine Fiber Ids Metrics Net Node Option Process Process_pair Rng Screen_program Server Sim_time Tandem_audit Tandem_os Tandem_sim Tmf
