lib/encompass/cluster.mli: Discprocess File_client Screen_program Server Tandem_db Tandem_disk Tandem_os Tandem_sim Tcp Tmf
