lib/encompass/screen_program.ml: Tmf
