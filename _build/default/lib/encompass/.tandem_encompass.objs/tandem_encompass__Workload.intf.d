lib/encompass/workload.mli: Cluster Screen_program Server Tandem_os Tandem_sim
