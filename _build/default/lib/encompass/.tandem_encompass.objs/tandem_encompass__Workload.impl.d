lib/encompass/workload.ml: Cluster Discprocess File File_client Fun Key List Option Record Rng Schema Screen_program Server Store Tandem_db Tandem_os Tandem_sim
