lib/encompass/file_client.mli: Dp_protocol Format Tandem_db Tandem_os Tandem_sim Tmf
