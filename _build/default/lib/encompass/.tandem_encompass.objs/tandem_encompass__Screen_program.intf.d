lib/encompass/screen_program.mli: Tmf
