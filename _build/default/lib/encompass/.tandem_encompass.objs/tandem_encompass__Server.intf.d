lib/encompass/server.mli: File_client Tandem_os Tandem_sim Tmf
