lib/encompass/dp_protocol.mli: Format Tandem_audit Tandem_os Tandem_sim
