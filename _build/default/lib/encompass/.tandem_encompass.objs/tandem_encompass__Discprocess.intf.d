lib/encompass/discprocess.mli: Tandem_db Tandem_disk Tandem_lock Tandem_os Tmf
