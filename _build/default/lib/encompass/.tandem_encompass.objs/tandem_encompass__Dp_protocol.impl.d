lib/encompass/dp_protocol.ml: Format Tandem_audit Tandem_os Tandem_sim
