lib/encompass/server.ml: Array Cpu File_client Format Hw_config Ids List Mailbox Message Net Node Option Printf Process Rpc Tandem_os Tandem_sim Tmf
