lib/encompass/tcp.mli: Screen_program Tandem_os Tmf
