(** The Terminal Control Process.

    A TCP is a process-pair supervising the interleaved execution of one
    screen program per terminal (up to 32 terminals). Screen input is
    checkpointed to the backup when accepted, so after a takeover the
    interrupted transactions are backed out and re-executed from
    BEGIN-TRANSACTION without re-entering the input. The TCP enforces the
    configurable transaction restart limit. *)

type t

val spawn :
  net:Tandem_os.Net.t ->
  tmf:Tmf.t ->
  node:Tandem_os.Node.t ->
  name:string ->
  lookup_class:(string -> (Tandem_os.Ids.node_id * int) option) ->
  primary_cpu:Tandem_os.Ids.cpu_id ->
  backup_cpu:Tandem_os.Ids.cpu_id ->
  terminals:int ->
  program:Screen_program.t ->
  t
(** [lookup_class] resolves a server-class name to its node and size (the
    cluster provides it). [terminals] must be 1..32. *)

val name : t -> string

val submit : t -> terminal:int -> string -> unit
(** Deliver one screen input to a terminal; it queues behind earlier
    inputs. *)

val terminal_count : t -> int

val last_output : t -> terminal:int -> string option

val completed : t -> int
(** Transactions carried to completion (committed). *)

val program_aborts : t -> int
(** Programs ended by ABORT-TRANSACTION (no restart). *)

val failures : t -> int
(** Inputs abandoned after exceeding the restart limit. *)

val restarts : t -> int
(** Total automatic restarts performed. *)

val busy_terminals : t -> int
(** Terminals currently executing or holding queued input. *)
