(** Screen programs: the transaction-defining terminal code.

    In ENCOMPASS these are Screen COBOL programs interpreted by the TCP;
    here they are OCaml functions over the same verb set. A program receives
    the (checkpointed) screen input, brackets its work with
    BEGIN-TRANSACTION / END-TRANSACTION, performs SENDs to server classes in
    between, and produces the screen output.

    Control flow matches the paper: RESTART-TRANSACTION (raised by the
    [restart_transaction] verb or by a failed SEND) makes the TCP back out
    the current transid and re-execute the program from BEGIN-TRANSACTION —
    with the same checkpointed input, so the terminal user does not re-enter
    it — up to the configurable restart limit. ABORT-TRANSACTION backs out
    without restart. *)

exception Restart_transaction of string
(** Transient failure: back out and re-execute from BEGIN-TRANSACTION. *)

exception Abort_program of string
(** Deliberate abort: back out, do not restart. *)

type verbs = {
  begin_transaction : unit -> unit;
      (** Obtain a new transid and enter transaction mode. *)
  end_transaction : unit -> unit;
      (** Commit. Raises {!Restart_transaction} if the system aborted the
          transaction instead. *)
  abort_transaction : reason:string -> unit;
      (** Never returns: raises {!Abort_program}. *)
  restart_transaction : reason:string -> unit;
      (** Never returns: raises {!Restart_transaction}. *)
  send : server_class:string -> string -> string;
      (** SEND a request message to a server class and await the reply.
          Transient failures raise {!Restart_transaction}; application
          rejections raise {!Abort_program}. *)
  current_transid : unit -> Tmf.Transid.t option;
}

type t = {
  program_name : string;
  run : verbs -> string -> string;  (** input -> screen output *)
}

val make : name:string -> (verbs -> string -> string) -> t

val transaction : name:string -> (verbs -> string -> string) -> t
(** Convenience wrapper: a program that is exactly one transaction — the
    body runs between an implicit BEGIN-TRANSACTION and END-TRANSACTION. *)
