lib/mfg/suspense.mli: Tandem_db Tandem_encompass Tandem_os Tandem_sim
