lib/mfg/suspense.ml: Cluster Fiber File_client Hashtbl Ids Key Net Node Printf Process Record Server Sim_time Tandem_db Tandem_encompass Tandem_os Tandem_sim Tmf
