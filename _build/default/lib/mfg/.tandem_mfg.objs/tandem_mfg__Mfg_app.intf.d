lib/mfg/mfg_app.mli: Suspense Tandem_encompass Tandem_os Tandem_sim
