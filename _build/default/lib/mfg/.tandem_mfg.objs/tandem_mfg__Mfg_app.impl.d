lib/mfg/mfg_app.ml: Cluster Discprocess Dp_protocol File File_client Fun Ids Key List Option Printf Process Record Schema Screen_program Server Store Suspense Tandem_db Tandem_encompass Tandem_os Tcp
