(** Suspense files and the suspense monitor — the deferred-replication
    machinery of the manufacturing data base.

    A global-file update commits at the record's master node together with
    one suspense-file entry per non-master copy. The suspense monitor scans
    its node's suspense file for work: for each entry whose target node is
    currently accessible, it executes a TMF transaction that applies the
    update at the target and deletes the entry. Entries for one target are
    applied strictly in suspense-file order — when a target is unreachable
    (or an entry for it fails), its later entries are skipped too, so that
    after reconnection the accumulated updates replay in order and the
    copies converge. *)

val entry_payload :
  target:Tandem_os.Ids.node_id ->
  file:string ->
  key:Tandem_db.Key.t ->
  payload:string ->
  string
(** Encode one deferred-update record. *)

val decode_entry :
  string -> (Tandem_os.Ids.node_id * string * Tandem_db.Key.t * string) option

type t

val start :
  cluster:Tandem_encompass.Cluster.t ->
  node:Tandem_os.Ids.node_id ->
  suspense_file:string ->
  apply_class:(Tandem_os.Ids.node_id -> string) ->
  ?interval:Tandem_sim.Sim_time.span ->
  unit ->
  t
(** Spawn the node's suspense monitor: a dedicated process whose fiber scans
    [suspense_file] every [interval] (default 500 ms) and delivers deferred
    updates through the target node's apply-server class. The monitor runs
    forever — drive the engine with a time bound. *)

val deliveries : t -> int
(** Deferred updates successfully applied and deleted. *)

val skips : t -> int
(** Entries skipped because their target was unreachable or blocked. *)
