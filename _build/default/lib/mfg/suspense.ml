open Tandem_sim
open Tandem_os
open Tandem_db
open Tandem_encompass

let entry_payload ~target ~file ~key ~payload =
  Record.encode
    [
      ("target", string_of_int target);
      ("file", file);
      ("key", key);
      ("data", payload);
    ]

let decode_entry encoded =
  match
    ( Record.int_field encoded "target",
      Record.field encoded "file",
      Record.field encoded "key",
      Record.field encoded "data" )
  with
  | Some target, Some file, Some key, Some data -> Some (target, file, key, data)
  | _ -> None

type t = {
  cluster : Cluster.t;
  node : Ids.node_id;
  suspense_file : string;
  apply_class : Ids.node_id -> string;
  mutable delivered : int;
  mutable skipped : int;
}

(* One delivery: a TMF transaction that sends the update to a server at the
   target node and deletes the suspense entry. Either both happen or
   neither. *)
let deliver t process entry_key entry =
  match decode_entry entry with
  | None -> `Failed
  | Some (target, file, key, data) -> (
      let tmf = Cluster.tmf t.cluster in
      let transid = Tmf.begin_transaction tmf ~node:t.node ~cpu:(Process.pid process).Ids.cpu in
      let apply_request =
        Record.encode [ ("file", file); ("key", key); ("data", data) ]
      in
      let outcome =
        match
          Server.send (Cluster.net t.cluster) ~self:process ~tmf ~transid
            ~node:target
            ~class_name:(t.apply_class target)
            ~members:1 apply_request
        with
        | Error _ -> `Failed
        | Ok _ -> (
            match
              File_client.delete (Cluster.files t.cluster) ~self:process
                ~transid ~file:t.suspense_file entry_key
            with
            | Ok () -> `Applied
            | Error _ -> `Failed)
      in
      match outcome with
      | `Applied -> (
          match Tmf.end_transaction tmf ~self:process transid with
          | Ok () -> `Applied
          | Error _ -> `Failed)
      | `Failed ->
          ignore
            (Tmf.abort_transaction tmf ~self:process
               ~reason:"suspense delivery failed" transid);
          `Failed)

let scan_pass t process =
  let files = Cluster.files t.cluster in
  let net = Cluster.net t.cluster in
  (* Targets blocked for the rest of this pass: in-order delivery per
     target requires stopping that target's stream at the first failure. *)
  let blocked = Hashtbl.create 4 in
  let rec walk after =
    match
      File_client.next_after files ~self:process ~file:t.suspense_file after
    with
    | Error _ | Ok None -> ()
    | Ok (Some (entry_key, entry)) ->
        (match decode_entry entry with
        | None -> ()
        | Some (target, _, _, _) ->
            if Hashtbl.mem blocked target || not (Net.reachable net t.node target)
            then begin
              t.skipped <- t.skipped + 1;
              Hashtbl.replace blocked target ()
            end
            else begin
              match deliver t process entry_key entry with
              | `Applied -> t.delivered <- t.delivered + 1
              | `Failed ->
                  t.skipped <- t.skipped + 1;
                  Hashtbl.replace blocked target ()
            end);
        walk entry_key
  in
  walk Key.min_key

let start ~cluster ~node ~suspense_file ~apply_class
    ?(interval = Sim_time.milliseconds 500) () =
  let t =
    {
      cluster;
      node;
      suspense_file;
      apply_class;
      delivered = 0;
      skipped = 0;
    }
  in
  let node_object = Net.node (Cluster.net cluster) node in
  let current = ref None in
  let spawn_monitor cpu =
    let process =
      Node.spawn node_object ~name:(Printf.sprintf "$SUSP%d" node) ~cpu
        (fun process ->
          let rec loop () =
            scan_pass t process;
            Fiber.sleep (Cluster.engine cluster) interval;
            loop ()
          in
          loop ())
    in
    current := Some process
  in
  spawn_monitor 1;
  (* The monitor is a dedicated process; if its processor fails it is
     re-created on a surviving one (the suspense file itself is ordinary
     audited data, so no work is lost). *)
  Node.on_cpu_down node_object (fun _failed ->
      match !current with
      | Some process when not (Process.is_alive process) -> (
          match Node.up_cpus node_object with
          | cpu :: _ -> spawn_monitor cpu
          | [] -> ())
      | _ -> ());
  t

let deliveries t = t.delivered

let skips t = t.skipped
