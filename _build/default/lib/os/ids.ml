type node_id = int

type cpu_id = int

type pid = { node : node_id; cpu : cpu_id; serial : int }

let pp_pid formatter { node; cpu; serial } =
  Format.fprintf formatter "%d:%d.%d" node cpu serial

let pid_to_string pid = Format.asprintf "%a" pp_pid pid

let equal_pid a b = a.node = b.node && a.cpu = b.cpu && a.serial = b.serial

let compare_pid a b =
  match Int.compare a.node b.node with
  | 0 -> (
      match Int.compare a.cpu b.cpu with
      | 0 -> Int.compare a.serial b.serial
      | c -> c)
  | c -> c

let max_cpus_per_node = 16
