(** Per-process message queue with fiber-blocking receive.

    A receive may carry a filter; queued messages that do not match stay
    queued for a later, differently-filtered receive (selective receive, as
    used by processes that interleave several conversations). *)

type t

val create : unit -> t

val enqueue : t -> Message.t -> unit
(** Deliver a message: hand it to the first parked waiter whose filter
    accepts it, else queue it. *)

val receive : ?filter:(Message.t -> bool) -> t -> Message.t
(** Return the first queued matching message, or park the calling fiber until
    one arrives. Must run inside a fiber. *)

val receive_opt : ?filter:(Message.t -> bool) -> t -> Message.t option
(** Non-blocking variant. *)

val pending : t -> int

val flush_dead : t -> unit
(** Process death: wake every parked waiter with [Error Fiber.Killed] and
    discard queued messages. *)
