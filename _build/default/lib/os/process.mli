(** Simulated processes.

    A process lives on one processor, owns a mailbox, and runs one or more
    fibers. Killing a process (normally as a consequence of its processor
    failing) kills its fibers, wakes parked receivers with
    [Fiber.Killed], and silently discards any message later addressed to
    it — the sender learns of the death only through timeout, as on the real
    machine. *)

type t

val create :
  Tandem_sim.Engine.t -> pid:Ids.pid -> name:string -> cpu:Cpu.t -> t
(** Create without starting any fiber (see {!start}). Normally called via
    [Node.spawn]. *)

val start : t -> (t -> unit) -> unit
(** Run the process body as a fresh fiber. *)

val spawn_fiber : t -> (unit -> unit) -> unit
(** Add an auxiliary fiber to a live process (used for per-terminal threads
    inside a TCP, and for takeover logic). *)

val pid : t -> Ids.pid

val name : t -> string

val cpu : t -> Cpu.t

val mailbox : t -> Mailbox.t

val is_alive : t -> bool

val kill : t -> unit

val deliver : t -> Message.t -> unit
(** Hand an arriving message to the process: replies matching an outstanding
    RPC complete it directly; everything else goes to the mailbox. Dropped if
    the process is dead. *)

val expect_reply : t -> corr:int -> (Message.payload -> unit) -> unit
(** Register an RPC completion for correlation number [corr]. *)

val forget_reply : t -> corr:int -> unit

val receive : ?filter:(Message.t -> bool) -> t -> Message.t
(** Blocking receive from the process mailbox (inside one of its fibers). *)
