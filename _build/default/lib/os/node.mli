(** A Tandem node (system): 2–16 processors joined by dual interprocessor
    buses, a process table and a process name registry.

    The name registry plays the role of the GUARDIAN device/process name
    space ([$DISC1]-style names): requesters address long-lived services by
    name, and a process-pair re-points its name at the backup on takeover,
    which is what makes fail-over transparent to requesters. *)

type t

val create :
  engine:Tandem_sim.Engine.t ->
  trace:Tandem_sim.Trace.t ->
  metrics:Tandem_sim.Metrics.t ->
  config:Hw_config.t ->
  id:Ids.node_id ->
  cpus:int ->
  t
(** [cpus] must be between 2 and 16. *)

val id : t -> Ids.node_id

val engine : t -> Tandem_sim.Engine.t

val config : t -> Hw_config.t

val trace : t -> Tandem_sim.Trace.t

val metrics : t -> Tandem_sim.Metrics.t

val cpu_count : t -> int

val cpu : t -> Ids.cpu_id -> Cpu.t

val up_cpus : t -> Ids.cpu_id list

val spawn : t -> ?name:string -> cpu:Ids.cpu_id -> (Process.t -> unit) -> Process.t
(** Start a process on the given processor. Raises [Invalid_argument] if the
    processor is down. *)

val find_process : t -> Ids.pid -> Process.t option

val register_name : t -> string -> Ids.pid -> unit

val unregister_name : t -> string -> unit

val lookup_name : t -> string -> Ids.pid option

val deliver_local : t -> Message.t -> unit
(** Deliver a message between processes of this node: same-processor latency
    or one interprocessor-bus transfer. Silently dropped (and counted) if
    both buses are down and the transfer would cross processors, or if the
    destination is dead. *)

(** {1 Module failures} *)

val fail_cpu : t -> Ids.cpu_id -> unit
(** Processor failure: every process on it dies instantly; other processors
    learn of the death after the failure-detection interval (the "I'm alive"
    protocol), at which point the registered down-hooks run. *)

val restore_cpu : t -> Ids.cpu_id -> unit
(** Reload a processor. Runs the up-hooks. Processes do not come back — the
    process-pair mechanism re-creates backups. *)

val fail_bus : t -> [ `X | `Y ] -> unit
(** Fail one of the dual buses; traffic continues on the other. *)

val restore_bus : t -> [ `X | `Y ] -> unit

val buses_up : t -> int

val on_cpu_down : t -> (Ids.cpu_id -> unit) -> unit
(** Register a hook run (after the detection interval) when a processor
    fails. Used by process-pairs for takeover. *)

val on_cpu_up : t -> (Ids.cpu_id -> unit) -> unit
