(** Interprocess messages.

    The payload type is extensible: every subsystem (DISCPROCESS, TMP,
    servers, …) declares its own constructors, so the message system stays
    ignorant of their contents — mirroring the untyped message blocks of the
    Tandem Message System. [kind] distinguishes request/reply pairs for the
    RPC layer; [corr] is the correlation number matching a reply to its
    outstanding request. *)

type payload = ..

type payload += Ping | Pong
(** Built-in payloads for liveness tests. *)

type kind = Request | Reply | Oneway

type t = {
  src : Ids.pid;
  dst : Ids.pid;
  kind : kind;
  corr : int;  (** Correlation number; [0] for one-way messages. *)
  payload : payload;
}

val oneway : src:Ids.pid -> dst:Ids.pid -> payload -> t

val request : src:Ids.pid -> dst:Ids.pid -> corr:int -> payload -> t

val reply_to : t -> src:Ids.pid -> payload -> t
(** [reply_to request ~src payload] is the reply envelope: destination is the
    requester, correlation number copied. *)

val pp : Format.formatter -> t -> unit
