open Tandem_sim

type Message.payload += Checkpoint_apply of (unit -> unit)

type ('state, 'ckpt) t = {
  net : Net.t;
  node : Node.t;
  pair_name : string;
  init : unit -> 'state;
  apply : 'state -> 'ckpt -> unit;
  snapshot : 'state -> 'ckpt list;
  service : ('state, 'ckpt) t -> 'state -> Process.t -> unit;
  on_takeover : 'state -> unit;
  mutable primary : (Process.t * 'state) option;
  mutable backup : (Process.t * 'state) option;
  mutable takeover_count : int;
}

let is_checkpoint (message : Message.t) =
  match message.Message.payload with
  | Checkpoint_apply _ -> true
  | _ -> false

let backup_loop t process state =
  let config = Node.config t.node in
  let rec loop () =
    let message = Process.receive ~filter:is_checkpoint process in
    (match message.Message.payload with
    | Checkpoint_apply apply_it ->
        Cpu.consume (Process.cpu process) config.Hw_config.cpu_message_cost;
        apply_it ()
    | _ -> assert false);
    loop ()
  in
  (* Reference [state] so replica ownership is explicit at the spawn site. *)
  ignore (Sys.opaque_identity state);
  loop ()

let spawn_backup t ~cpu =
  let state = t.init () in
  (* Rebirth: bring the new replica up to date by replaying a snapshot of the
     current primary state. The bulk transfer happens over the bus but is
     not individually metered — only its count is. *)
  (match t.primary with
  | Some (_, primary_state) ->
      List.iter (fun ckpt -> t.apply state ckpt) (t.snapshot primary_state)
  | None -> ());
  let process =
    Node.spawn t.node ~name:(t.pair_name ^ "-B") ~cpu (fun process ->
        backup_loop t process state)
  in
  t.backup <- Some (process, state);
  Metrics.incr (Metrics.counter (Net.metrics t.net) "os.pair_backup_created")

let choose_backup_cpu t ~avoid =
  List.find_opt (fun cpu_id -> cpu_id <> avoid) (Node.up_cpus t.node)

let handle_cpu_down t failed_cpu =
  let primary_lost =
    match t.primary with
    | Some (process, _) -> (Process.pid process).Ids.cpu = failed_cpu
    | None -> false
  in
  let backup_lost =
    match t.backup with
    | Some (process, _) -> (Process.pid process).Ids.cpu = failed_cpu
    | None -> false
  in
  if primary_lost then begin
    t.primary <- None;
    match t.backup with
    | Some (backup_process, backup_state)
      when Process.is_alive backup_process ->
        (* Takeover: the backup becomes the primary. *)
        t.backup <- None;
        t.primary <- Some (backup_process, backup_state);
        t.takeover_count <- t.takeover_count + 1;
        Node.register_name t.node t.pair_name (Process.pid backup_process);
        Trace.emit (Net.trace t.net) "pair" "%s: takeover by cpu %d"
          t.pair_name (Process.pid backup_process).Ids.cpu;
        Metrics.incr (Metrics.counter (Net.metrics t.net) "os.pair_takeovers");
        t.on_takeover backup_state;
        Process.spawn_fiber backup_process (fun () ->
            t.service t backup_state backup_process);
        (match
           choose_backup_cpu t ~avoid:(Process.pid backup_process).Ids.cpu
         with
        | Some cpu -> spawn_backup t ~cpu
        | None -> ())
    | Some _ | None ->
        (* Both members gone: the service is down (the multiple-module
           failure that only ROLLFORWARD can repair). *)
        t.backup <- None;
        Node.unregister_name t.node t.pair_name;
        Trace.emit (Net.trace t.net) "pair" "%s: DOUBLE FAILURE, service down"
          t.pair_name;
        Metrics.incr
          (Metrics.counter (Net.metrics t.net) "os.pair_double_failures")
  end
  else if backup_lost then begin
    t.backup <- None;
    match t.primary with
    | Some (primary_process, _) -> (
        match
          choose_backup_cpu t ~avoid:(Process.pid primary_process).Ids.cpu
        with
        | Some cpu -> spawn_backup t ~cpu
        | None -> ())
    | None -> ()
  end

let handle_cpu_up t restored_cpu =
  match (t.primary, t.backup) with
  | Some (primary_process, _), None
    when (Process.pid primary_process).Ids.cpu <> restored_cpu ->
      spawn_backup t ~cpu:restored_cpu
  | Some (primary_process, _), None ->
      (* Restored cpu hosts the primary?! cannot happen — primaries die with
         their cpu — but pick any other cpu defensively. *)
      (match choose_backup_cpu t ~avoid:(Process.pid primary_process).Ids.cpu with
      | Some cpu -> spawn_backup t ~cpu
      | None -> ())
  | _ -> ()

let create ~net ~node ~name ~primary_cpu ~backup_cpu ~init ~apply ~snapshot
    ~service ?(on_takeover = fun _ -> ()) () =
  if primary_cpu = backup_cpu then
    invalid_arg "Process_pair.create: primary and backup share a processor";
  let t =
    {
      net;
      node;
      pair_name = name;
      init;
      apply;
      snapshot;
      service;
      on_takeover;
      primary = None;
      backup = None;
      takeover_count = 0;
    }
  in
  let primary_state = init () in
  let primary_process =
    Node.spawn node ~name ~cpu:primary_cpu (fun process ->
        service t primary_state process)
  in
  t.primary <- Some (primary_process, primary_state);
  spawn_backup t ~cpu:backup_cpu;
  Node.on_cpu_down node (handle_cpu_down t);
  Node.on_cpu_up node (handle_cpu_up t);
  t

let checkpoint t ckpt =
  let config = Node.config t.node in
  Metrics.incr (Metrics.counter (Net.metrics t.net) "os.checkpoints");
  match (t.primary, t.backup) with
  | Some (primary_process, _), Some (backup_process, backup_state)
    when Process.is_alive backup_process ->
      let payload = Checkpoint_apply (fun () -> t.apply backup_state ckpt) in
      Net.send t.net
        (Message.oneway ~src:(Process.pid primary_process)
           ~dst:(Process.pid backup_process) payload);
      (* The primary waits for the checkpoint acknowledgement (one bus round
         trip) before acting on the checkpointed intention. *)
      Fiber.sleep (Net.engine t.net) (2 * config.Hw_config.bus_latency)
  | _ -> ()

let receive _t process =
  Process.receive ~filter:(fun message -> not (is_checkpoint message)) process

let name t = t.pair_name

let primary_pid t = Option.map (fun (p, _) -> Process.pid p) t.primary

let backup_pid t = Option.map (fun (p, _) -> Process.pid p) t.backup

let is_up t =
  match t.primary with
  | Some (process, _) -> Process.is_alive process
  | None -> false

let takeovers t = t.takeover_count

let primary_state t = Option.map snd t.primary
