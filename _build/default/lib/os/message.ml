type payload = ..

type payload += Ping | Pong

type kind = Request | Reply | Oneway

type t = {
  src : Ids.pid;
  dst : Ids.pid;
  kind : kind;
  corr : int;
  payload : payload;
}

let oneway ~src ~dst payload = { src; dst; kind = Oneway; corr = 0; payload }

let request ~src ~dst ~corr payload =
  { src; dst; kind = Request; corr; payload }

let reply_to request ~src payload =
  { src; dst = request.src; kind = Reply; corr = request.corr; payload }

let pp formatter t =
  let kind =
    match t.kind with Request -> "req" | Reply -> "rep" | Oneway -> "msg"
  in
  Format.fprintf formatter "%s %a -> %a (corr %d)" kind Ids.pp_pid t.src
    Ids.pp_pid t.dst t.corr
