(** A processor module.

    Each processor is an independent failure unit with its own power supply
    and memory. The simulation models processor time as a virtual FIFO queue:
    a fiber that [consume]s processor time is delayed until the processor has
    served everything scheduled before it. Utilization accounting feeds the
    throughput-scaling experiment (F2). *)

type t

val create : Tandem_sim.Engine.t -> node:Ids.node_id -> id:Ids.cpu_id -> t

val id : t -> Ids.cpu_id

val node : t -> Ids.node_id

val is_up : t -> bool

val mark_down : t -> unit
(** Also clears the backlog of queued processor time. *)

val mark_up : t -> unit

val consume : t -> Tandem_sim.Sim_time.span -> unit
(** [consume t span] charges [span] of processor time to the calling fiber,
    suspending it until the time has been served. Must run inside a fiber. *)

val total_busy : t -> Tandem_sim.Sim_time.span
(** Cumulative processor time served since creation. *)

val pp : Format.formatter -> t -> unit
