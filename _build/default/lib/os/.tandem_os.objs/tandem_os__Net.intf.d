lib/os/net.mli: Hw_config Ids Message Node Tandem_sim
