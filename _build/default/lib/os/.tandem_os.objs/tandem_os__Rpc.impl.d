lib/os/rpc.ml: Engine Fiber Format Hw_config Message Net Node Process Tandem_sim
