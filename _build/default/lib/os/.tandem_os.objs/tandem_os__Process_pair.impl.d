lib/os/process_pair.ml: Cpu Fiber Hw_config Ids List Message Metrics Net Node Option Process Sys Tandem_sim Trace
