lib/os/hw_config.mli: Tandem_sim
