lib/os/rpc.mli: Format Ids Message Net Process Tandem_sim
