lib/os/process.ml: Cpu Engine Fiber Hashtbl Ids List Mailbox Message Tandem_sim
