lib/os/net.ml: Engine Hashtbl Hw_config Ids Int List Message Metrics Node Option Process Rng Sim_time Tandem_sim Trace
