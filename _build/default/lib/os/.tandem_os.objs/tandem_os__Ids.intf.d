lib/os/ids.mli: Format
