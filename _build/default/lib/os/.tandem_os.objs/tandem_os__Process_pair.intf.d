lib/os/process_pair.mli: Ids Message Net Node Process
