lib/os/mailbox.ml: Fiber List Message Option Tandem_sim
