lib/os/hw_config.ml: Sim_time Tandem_sim
