lib/os/node.mli: Cpu Hw_config Ids Message Process Tandem_sim
