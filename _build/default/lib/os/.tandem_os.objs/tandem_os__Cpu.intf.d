lib/os/cpu.mli: Format Ids Tandem_sim
