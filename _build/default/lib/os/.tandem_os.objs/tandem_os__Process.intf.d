lib/os/process.mli: Cpu Ids Mailbox Message Tandem_sim
