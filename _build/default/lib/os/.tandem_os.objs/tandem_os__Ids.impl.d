lib/os/ids.ml: Format Int
