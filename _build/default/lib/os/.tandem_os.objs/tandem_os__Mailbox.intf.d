lib/os/mailbox.mli: Message
