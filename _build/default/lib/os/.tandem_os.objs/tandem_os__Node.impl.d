lib/os/node.ml: Array Cpu Engine Hashtbl Hw_config Ids List Message Metrics Printf Process Tandem_sim Trace
