lib/os/cpu.ml: Engine Fiber Format Ids Sim_time Tandem_sim
