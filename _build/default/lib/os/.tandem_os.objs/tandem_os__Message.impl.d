lib/os/message.ml: Format Ids
