lib/os/message.mli: Format Ids
