open Tandem_sim

type waiter = {
  filter : Message.t -> bool;
  resume : Message.t Fiber.resume;
  mutable active : bool;
}

type t = {
  mutable queue : Message.t list; (* newest first; reversed on scan *)
  mutable waiters : waiter list; (* oldest first *)
}

let create () = { queue = []; waiters = [] }

let accept_all _ = true

let enqueue t message =
  let rec hand_off = function
    | [] -> None
    | waiter :: rest ->
        if waiter.active && waiter.filter message then begin
          waiter.active <- false;
          Some (waiter, rest)
        end
        else
          Option.map
            (fun (found, others) -> (found, waiter :: others))
            (hand_off rest)
  in
  match hand_off t.waiters with
  | Some (waiter, remaining) ->
      t.waiters <- remaining;
      waiter.resume (Ok message)
  | None -> t.queue <- message :: t.queue

let take_queued filter t =
  let rec split seen = function
    | [] -> None
    | message :: rest ->
        if filter message then Some (message, List.rev_append seen rest)
        else split (message :: seen) rest
  in
  (* Queue is newest-first; scan oldest-first for FIFO semantics. *)
  match split [] (List.rev t.queue) with
  | None -> None
  | Some (message, rest_oldest_first) ->
      t.queue <- List.rev rest_oldest_first;
      Some message

let receive_opt ?(filter = accept_all) t = take_queued filter t

let receive ?(filter = accept_all) t =
  match take_queued filter t with
  | Some message -> message
  | None ->
      Fiber.suspend (fun resume ->
          t.waiters <- t.waiters @ [ { filter; resume; active = true } ])

let pending t = List.length t.queue

let flush_dead t =
  let waiters = t.waiters in
  t.waiters <- [];
  t.queue <- [];
  List.iter
    (fun waiter ->
      if waiter.active then begin
        waiter.active <- false;
        waiter.resume (Error Fiber.Killed)
      end)
    waiters
