open Tandem_sim

type t = {
  engine : Engine.t;
  node : Ids.node_id;
  id : Ids.cpu_id;
  mutable up : bool;
  mutable busy_until : Sim_time.t;
  mutable busy_total : Sim_time.span;
}

let create engine ~node ~id =
  { engine; node; id; up = true; busy_until = Sim_time.zero; busy_total = 0 }

let id t = t.id

let node t = t.node

let is_up t = t.up

let mark_down t =
  t.up <- false;
  t.busy_until <- Engine.now t.engine

let mark_up t = t.up <- true

let consume t span =
  if span < 0 then invalid_arg "Cpu.consume: negative span";
  let now = Engine.now t.engine in
  let start = max now t.busy_until in
  t.busy_until <- Sim_time.add start span;
  t.busy_total <- t.busy_total + span;
  let delay = Sim_time.diff t.busy_until now in
  if delay > 0 then Fiber.sleep t.engine delay

let total_busy t = t.busy_total

let pp formatter t =
  Format.fprintf formatter "cpu %d:%d (%s)" t.node t.id
    (if t.up then "up" else "down")
