(** The NonStop process-pair.

    Two cooperating processes in two processors: the primary serves requests
    and sends the backup checkpoints; the backup passively applies them to
    its own copy of the service state. When the primary's processor fails,
    the backup is promoted — it re-registers the service name at its own pid
    (so name-addressed retries reach it) and resumes service from the
    checkpointed state. Mutations the primary made after its last checkpoint
    are lost, exactly as on the real machine; services checkpoint *before*
    acting to make that window harmless (for the DISCPROCESS this rule is
    what substitutes for Write-Ahead-Log).

    A promoted pair re-creates its backup on another processor ("rebirth"),
    and a pair whose backup dies does the same, so the pair survives any
    sequence of single failures with repair in between. Only the simultaneous
    loss of both processors takes the service down. *)

type ('state, 'ckpt) t

val create :
  net:Net.t ->
  node:Node.t ->
  name:string ->
  primary_cpu:Ids.cpu_id ->
  backup_cpu:Ids.cpu_id ->
  init:(unit -> 'state) ->
  apply:('state -> 'ckpt -> unit) ->
  snapshot:('state -> 'ckpt list) ->
  service:(('state, 'ckpt) t -> 'state -> Process.t -> unit) ->
  ?on_takeover:('state -> unit) ->
  unit ->
  ('state, 'ckpt) t
(** [init] builds an empty replica state; [apply] folds one checkpoint into a
    replica; [snapshot] dumps a state as the checkpoint sequence that
    re-creates it (used for rebirth); [service] is the primary's request
    loop, which must use {!receive} (not [Process.receive]) so that
    checkpoint traffic is kept separate. *)

val checkpoint : ('state, 'ckpt) t -> 'ckpt -> unit
(** Send one checkpoint to the backup and wait the bus round-trip. Called
    from the service fiber, before the primary acts on the checkpointed
    intention. No-op (but still counted) when no backup exists. *)

val receive : ('state, 'ckpt) t -> Process.t -> Message.t
(** Receive the next non-checkpoint message in the service loop. *)

val name : ('state, 'ckpt) t -> string

val primary_pid : ('state, 'ckpt) t -> Ids.pid option
(** [None] when the pair is completely down. *)

val backup_pid : ('state, 'ckpt) t -> Ids.pid option

val is_up : ('state, 'ckpt) t -> bool

val takeovers : ('state, 'ckpt) t -> int
(** Number of backup-promotions so far. *)

val primary_state : ('state, 'ckpt) t -> 'state option
(** Current primary replica, for tests and for subsystems co-located with
    the service (never for remote access — that is what messages are for). *)
