(** Identifiers for the simulated hardware and process name space.

    A Tandem network is a collection of nodes (systems); each node contains
    2–16 processor modules; each processor runs processes identified by a
    serial number. A [pid] is therefore globally unique and encodes the
    process's physical location — exactly the information the Tandem message
    system uses for routing. *)

type node_id = int
(** Network node (system) number. *)

type cpu_id = int
(** Processor number within a node, [0 .. cpus-1] (at most 16). *)

type pid = { node : node_id; cpu : cpu_id; serial : int }
(** Globally unique process identifier. *)

val pp_pid : Format.formatter -> pid -> unit
(** Renders as ["2:1.17"] (node:cpu.serial). *)

val pid_to_string : pid -> string

val equal_pid : pid -> pid -> bool

val compare_pid : pid -> pid -> int

val max_cpus_per_node : int
(** 16, per the hardware architecture. *)
