examples/distributed_transfer.ml: Cluster Engine List Metrics Net Printf Sim_time Tandem_audit Tandem_encompass Tandem_os Tandem_sim Tcp Tmf Workload
