examples/quickstart.ml: Cluster Engine Hashtbl Printf Screen_program Sim_time Tandem_audit Tandem_db Tandem_encompass Tandem_sim Tcp Tmf Workload
