examples/order_entry.ml: Cluster Discprocess File_client Format List Option Printf Tandem_db Tandem_encompass Tcp Tmf Workload
