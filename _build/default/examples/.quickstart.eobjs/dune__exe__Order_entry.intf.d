examples/order_entry.mli:
