examples/quickstart.mli:
