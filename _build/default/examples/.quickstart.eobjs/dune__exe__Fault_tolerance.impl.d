examples/fault_tolerance.ml: Cluster Engine Format Metrics Printf Rng Sim_time Tandem_encompass Tandem_sim Tcp Tmf Workload
