examples/distributed_transfer.mli:
