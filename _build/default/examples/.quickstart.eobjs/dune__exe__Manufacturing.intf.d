examples/manufacturing.mli:
