examples/manufacturing.ml: Engine List Mfg_app Net Option Printf Sim_time Suspense Tandem_encompass Tandem_mfg Tandem_os Tandem_sim
