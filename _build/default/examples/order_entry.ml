(* Order entry: multi-key access with automatically maintained secondary
   indices — and what transaction backout does to them.

     dune exec examples/order_entry.exe *)

open Tandem_encompass

let () =
  Printf.printf "== Order entry: secondary indices under TMF ==\n\n";
  let cluster = Cluster.create ~seed:1981 () in
  ignore (Cluster.add_node cluster ~id:1 ~cpus:4);
  ignore (Cluster.add_volume cluster ~node:1 ~name:"$DATA1" ~primary_cpu:2 ~backup_cpu:3 ());
  Workload.install_orders cluster ~home:(1, "$DATA1");
  ignore (Workload.add_order_servers cluster ~node:1 ~count:2);
  let tcp =
    Cluster.add_tcp cluster ~node:1 ~name:"$TCP1" ~terminals:4
      ~program:Workload.order_entry_program ()
  in

  (* Three orders for customer 7, one for customer 9. The ORDER file keeps
     an alternate-key index on the customer field; every insert maintains
     it automatically. *)
  Tcp.submit tcp ~terminal:0 (Workload.new_order_input ~order:1001 ~customer:7 ~item:42);
  Tcp.submit tcp ~terminal:1 (Workload.new_order_input ~order:1002 ~customer:7 ~item:17);
  Tcp.submit tcp ~terminal:2 (Workload.new_order_input ~order:1003 ~customer:9 ~item:42);
  Tcp.submit tcp ~terminal:3 (Workload.new_order_input ~order:1004 ~customer:7 ~item:5);
  Cluster.run cluster;
  Printf.printf "entered 4 orders; committed: %d\n" (Tcp.completed tcp);

  (* Multi-key access: query by customer through the server path. *)
  Tcp.submit tcp ~terminal:0 (Workload.customer_query_input ~customer:7);
  Cluster.run cluster;
  (match Tcp.last_output tcp ~terminal:0 with
  | Some output ->
      Printf.printf "orders for customer 7 (via ORDER-BY-CUSTOMER index): %s\n"
        (Option.value ~default:"?" (Tandem_db.Record.field output "count"))
  | None -> print_endline "query produced no output");

  (* A new order inside a transaction that aborts: the record AND its index
     entry are backed out together. *)
  let tmf = Cluster.tmf cluster in
  Cluster.run_client cluster ~node:1 ~cpu:1 (fun process ->
      let transid = Tmf.begin_transaction tmf ~node:1 ~cpu:1 in
      ignore
        (File_client.insert (Cluster.files cluster) ~self:process ~transid
           ~file:Workload.order_file (Tandem_db.Key.of_int 1005)
           (Tandem_db.Record.encode
              [ ("customer", "7"); ("item", "3"); ("status", "open") ]));
      Printf.printf "order 1005 inserted under transaction %s... aborting it\n"
        (Tmf.Transid.to_string transid);
      ignore (Tmf.abort_transaction tmf ~self:process ~reason:"customer hung up" transid));
  Cluster.run cluster;
  Printf.printf "after backout, orders for customer 7: %d (index entry removed too)\n\n"
    (Workload.orders_for_customer cluster ~home:(1, "$DATA1") ~customer:7);

  (* A report through the non-procedural query language. *)
  let dp = Cluster.discprocess cluster ~node:1 ~volume:"$DATA1" in
  (match Discprocess.file dp Workload.order_file with
  | Some file -> (
      let text = "FIND ORDER WHERE customer = 7 SORTED BY item LIST item status" in
      Printf.printf "query: %s\n" text;
      match Tandem_db.Query.parse text with
      | Error m -> Printf.printf "  parse error: %s\n" m
      | Ok query -> (
          Printf.printf "  (via index: %b)\n" (Tandem_db.Query.ran_via_index query file);
          match Tandem_db.Query.run query file with
          | Ok rows ->
              List.iter (fun row -> Format.printf "  %a@." Tandem_db.Query.pp_row row) rows
          | Error m -> Printf.printf "  error: %s\n" m))
  | None -> ());
  Printf.printf "\nDone.\n"
