(* The manufacturing distributed data base of Figure 4: four plants with
   replicated global files, master-node updates, suspense files and
   convergence after a network partition.

     dune exec examples/manufacturing.exe *)

open Tandem_sim
open Tandem_os
open Tandem_mfg

let print_replicas t item =
  List.iter
    (fun (plant, name) ->
      Printf.printf "    %-12s item %d = %s\n" name item
        (Option.value ~default:"?"
           (List.assoc plant (Mfg_app.replica_descriptions t ~item))))
    Mfg_app.plant_names

let run_for t span =
  let cluster = Mfg_app.cluster t in
  Tandem_encompass.Cluster.run
    ~until:(Sim_time.add (Engine.now (Tandem_encompass.Cluster.engine cluster)) span)
    cluster

let () =
  Printf.printf "== Tandem Manufacturing: replicated data with node autonomy ==\n\n";
  let t = Mfg_app.build ~seed:7 ~items:16 () in
  let net = Tandem_encompass.Cluster.net (Mfg_app.cluster t) in
  Mfg_app.start_monitors t ();

  (* A local transaction at Reston: only its own stock file is touched. *)
  Mfg_app.submit_stock_update t ~node:3 ~item:5 ~quantity:(-30);
  run_for t (Sim_time.seconds 5);
  Printf.printf "local stock update at Reston: item 5 stock = %s (others untouched)\n\n"
    (match Mfg_app.stock_level t ~node:3 ~item:5 with
    | Some q -> string_of_int q
    | None -> "?");

  (* A global update from Neufahrn to an item mastered at Cupertino. *)
  Printf.printf "global update of item 0 (master: Cupertino), issued from Neufahrn:\n";
  Mfg_app.submit_global_update t ~via:4 ~item:0 ~description:"rev B";
  run_for t (Sim_time.seconds 15);
  print_replicas t 0;
  Printf.printf "  converged: %b\n\n" (Mfg_app.replicas_converged t);

  (* Partition Neufahrn away and keep updating: node autonomy means the
     other three plants continue, deferring Neufahrn's copies. *)
  Printf.printf "Neufahrn drops off the network; item 1 updated twice meanwhile:\n";
  Net.partition net [ 1; 2; 3 ] [ 4 ];
  Mfg_app.submit_global_update t ~via:1 ~item:1 ~description:"rev C1";
  run_for t (Sim_time.seconds 15);
  Mfg_app.submit_global_update t ~via:1 ~item:1 ~description:"rev C2";
  run_for t (Sim_time.seconds 15);
  print_replicas t 1;
  Printf.printf "  suspense backlog at master (Santa Clara): %d deferred update(s)\n\n"
    (Mfg_app.suspense_backlog t (Mfg_app.master_of t ~item:1));

  (* Work-in-progress: a build order consumes BOM components from local
     stock atomically. *)
  Printf.printf "build order at Santa Clara: 4 units of assembly 200 (2x item 5 + 1x item 6 each):\n";
  Mfg_app.define_bom t ~assembly:200 ~components:[ (5, 2); (6, 1) ];
  Mfg_app.submit_build t ~node:2 ~assembly:200 ~units:4;
  run_for t (Sim_time.seconds 5);
  Printf.printf "  stock item 5 = %s, item 6 = %s, WIP records = %d\n\n"
    (match Mfg_app.stock_level t ~node:2 ~item:5 with Some q -> string_of_int q | None -> "?")
    (match Mfg_app.stock_level t ~node:2 ~item:6 with Some q -> string_of_int q | None -> "?")
    (Mfg_app.wip_count t ~node:2);

  (* A purchase order: the header is global data (replicated via the
     suspense machinery), the detail line stays at the ordering plant. *)
  Printf.printf "purchase order 77 entered at Reston (header master: plant %d):\n"
    (Mfg_app.master_of t ~item:77);
  Mfg_app.submit_purchase_order t ~via:3 ~order:77 ~item:9 ~quantity:500;
  run_for t (Sim_time.seconds 15);
  Printf.printf
    "  header everywhere yet: %b (Neufahrn is still cut off — its copy is deferred); detail lines at Reston: %d\n\n"
    (Mfg_app.po_header_everywhere t ~order:77)
    (Mfg_app.po_detail_count t ~node:3);

  (* Reconnect: accumulated deferred updates are applied in order. *)
  Printf.printf "network re-connected; suspense monitors drain their backlogs:\n";
  Net.heal_partition net;
  run_for t (Sim_time.seconds 30);
  print_replicas t 1;
  Printf.printf "  converged: %b (Neufahrn jumped straight to the latest revision)\n"
    (Mfg_app.replicas_converged t);
  Printf.printf "  purchase order 77 header now on every plant: %b\n"
    (Mfg_app.po_header_everywhere t ~order:77);
  List.iter
    (fun (plant, name) ->
      match Mfg_app.monitor t plant with
      | Some monitor ->
          Printf.printf "  %-12s delivered %d deferred update(s), skipped %d\n" name
            (Suspense.deliveries monitor) (Suspense.skips monitor)
      | None -> ())
    Mfg_app.plant_names;
  Printf.printf "\nDone.\n"
