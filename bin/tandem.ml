(* The tandem CLI: drive configurable simulations of the reproduced system.

     dune exec bin/tandem.exe -- bank --cpus 8 --volumes 2 --seconds 30
     dune exec bin/tandem.exe -- bank --fail-cpu 2 --fail-at 10
     dune exec bin/tandem.exe -- mfg --partition 20 --heal 40
     dune exec bin/tandem.exe -- state-machine *)

open Cmdliner
open Tandem_sim
open Tandem_encompass

(* ------------------------------------------------------------------ *)
(* bank: a single-node (or value-set) debit-credit run with optional
   failure injection, reporting the metrics registry. *)

(* Build the standard single-node bank and queue the closed-loop input —
   shared by the bank, stats and trace subcommands. *)
let setup_bank ?(trace_tags = []) ~seed ~cpus ~volumes ~terminals ~servers
    ~seconds ~skew () =
  let cluster = Cluster.create ~seed () in
  List.iter
    (fun tag ->
      Tandem_sim.Trace.enable (Tandem_os.Net.trace (Cluster.net cluster)) tag)
    trace_tags;
  ignore (Cluster.add_node cluster ~id:1 ~cpus);
  let volume_names = List.init volumes (fun i -> Printf.sprintf "$DATA%d" (i + 1)) in
  List.iteri
    (fun i name ->
      ignore
        (Cluster.add_volume cluster ~node:1 ~name
           ~primary_cpu:((2 + i) mod cpus)
           ~backup_cpu:((3 + i) mod cpus)
           ()))
    volume_names;
  let spec =
    {
      Workload.accounts = 500 * volumes;
      tellers = 20;
      branches = 10;
      initial_balance = 1_000;
      account_partitions = List.map (fun v -> (1, v)) volume_names;
      system_home = (1, List.hd volume_names);
    }
  in
  Workload.install_bank cluster spec;
  ignore (Workload.add_bank_servers cluster ~node:1 ~count:servers ());
  let tcp =
    Cluster.add_tcp cluster ~node:1 ~name:"$TCP1" ~terminals
      ~program:Workload.debit_credit_program ()
  in
  let rng = Rng.create ~seed:(seed + 1) in
  for terminal = 0 to terminals - 1 do
    for _ = 1 to 100 * seconds do
      Tcp.submit tcp ~terminal (Workload.debit_credit_input rng spec ~skew ())
    done
  done;
  (cluster, tcp)

let run_bank seed cpus volumes terminals servers seconds skew fail_cpu fail_at
    trace_tags =
  let cluster, tcp =
    setup_bank ~trace_tags ~seed ~cpus ~volumes ~terminals ~servers ~seconds
      ~skew ()
  in
  (match (fail_cpu, fail_at) with
  | Some cpu, at ->
      ignore
        (Engine.schedule_after (Cluster.engine cluster) (Sim_time.seconds at)
           (fun () ->
             Printf.printf "[inject] failing cpu %d at %ds\n" cpu at;
             Cluster.fail_cpu cluster ~node:1 cpu))
  | None, _ -> ());
  Cluster.run ~until:(Sim_time.seconds seconds) cluster;
  Printf.printf "simulated %ds on %d cpus / %d volumes: %d committed (%.1f tx/s), %d restarts, %d failed\n\n"
    seconds cpus volumes (Tcp.completed tcp)
    (float_of_int (Tcp.completed tcp) /. float_of_int (max 1 seconds))
    (Tcp.restarts tcp) (Tcp.failures tcp);
  Format.printf "%a@." Metrics.pp (Cluster.metrics cluster);
  let entries =
    Tandem_sim.Trace.entries (Tandem_os.Net.trace (Cluster.net cluster))
  in
  if entries <> [] then begin
    Printf.printf "\ntrace:\n";
    List.iter (fun e -> Format.printf "  %a@." Tandem_sim.Trace.pp_entry e) entries
  end

let bank_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let cpus = Arg.(value & opt int 4 & info [ "cpus" ] ~doc:"Processors (2-16).") in
  let volumes = Arg.(value & opt int 1 & info [ "volumes" ] ~doc:"Data volumes.") in
  let terminals = Arg.(value & opt int 8 & info [ "terminals" ] ~doc:"Terminals (1-32).") in
  let servers = Arg.(value & opt int 4 & info [ "servers" ] ~doc:"BANK server class size.") in
  let seconds = Arg.(value & opt int 30 & info [ "seconds" ] ~doc:"Simulated run length.") in
  let skew =
    Arg.(value & opt float 0.0 & info [ "skew" ] ~doc:"Zipf theta over accounts.")
  in
  let fail_cpu =
    Arg.(value & opt (some int) None & info [ "fail-cpu" ] ~doc:"Fail this processor.")
  in
  let fail_at =
    Arg.(value & opt int 10 & info [ "fail-at" ] ~doc:"Failure instant (seconds).")
  in
  let trace =
    Arg.(value & opt_all string [] & info [ "trace" ] ~doc:"Enable a trace subsystem (tmf, pair, hw, net; * for all).")
  in
  Cmd.v
    (Cmd.info "bank" ~doc:"Run the debit-credit workload on one node")
    Term.(
      const run_bank $ seed $ cpus $ volumes $ terminals $ servers $ seconds
      $ skew $ fail_cpu $ fail_at $ trace)

(* ------------------------------------------------------------------ *)
(* stats: run a workload, then print the whole observability surface —
   metrics registry, commit-latency percentiles from the histograms and
   the per-transaction span summary; optionally dump it all as JSON. *)

let pp_latency_histogram metrics name what =
  let h = Metrics.read_histogram metrics name in
  if Metrics.histogram_count h > 0 then
    Printf.printf
      "%s latency (n=%d): p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms\n" what
      (Metrics.histogram_count h)
      (Metrics.histogram_quantile h 0.5)
      (Metrics.histogram_quantile h 0.9)
      (Metrics.histogram_quantile h 0.99)
      (Metrics.histogram_max h)

(* The blocking-window histogram (microseconds): how long voted-yes
   participants held locks waiting for someone else's verdict. Always
   printed — a zero row on a single-node run still tells the reader the
   window is being measured. *)
let pp_indoubt_histogram metrics =
  let h = Metrics.read_histogram metrics "tmp.indoubt_us" in
  if Metrics.histogram_count h = 0 then
    Printf.printf "in-doubt window: no voted-yes participant waits recorded\n"
  else
    Printf.printf
      "in-doubt window (n=%d): p50=%.0fus p90=%.0fus p99=%.0fus max=%.0fus\n"
      (Metrics.histogram_count h)
      (Metrics.histogram_quantile h 0.5)
      (Metrics.histogram_quantile h 0.9)
      (Metrics.histogram_quantile h 0.99)
      (Metrics.histogram_max h)

(* Guaranteed rows for the batching and commit-protocol counters: a run
   that never exercised one (knob off, workload shape) still shows it at
   zero instead of silently omitting it from the registry dump. *)
let print_counter_group metrics title names =
  Printf.printf "%s:\n" title;
  List.iter
    (fun name ->
      Printf.printf "  %-26s %d\n" name (Metrics.sum_counters metrics name))
    names;
  Printf.printf "\n"

let print_stats ~top ~json cluster =
  let metrics = Cluster.metrics cluster in
  let spans = Cluster.spans cluster in
  let engine = Cluster.engine cluster in
  Format.printf "%a@." Metrics.pp metrics;
  Printf.printf "\n";
  (* Engine accounting: cancelled events never executed (a timeout retired
     by a completed RPC, say), and pending counts live events only —
     cancelled-but-unreaped tombstones are excluded. *)
  Printf.printf "simulation engine:\n";
  Printf.printf "  %-26s %d\n" "sim.events_executed"
    (Engine.events_executed engine);
  Printf.printf "  %-26s %d\n" "sim.events_cancelled"
    (Engine.events_cancelled engine);
  Printf.printf "  %-26s %d\n\n" "sim.events_pending" (Engine.pending engine);
  print_counter_group metrics "commit-path batching"
    [ "disk.force_batches"; "net.boxcars"; "dp.coalesced_checkpoints" ];
  print_counter_group metrics "commit protocol"
    [
      "tmp.read_only_votes";
      "tmp.phase2_pruned";
      "tmp.presumed_aborts";
      "tmp.fast_path_commits";
    ];
  print_counter_group metrics "recovery replay"
    [ "tmf.recovery_chains"; "tmf.recovery_images_replayed" ];
  pp_latency_histogram metrics "tmf.commit_latency_ms" "commit";
  pp_latency_histogram metrics "tmf.abort_latency_ms" "abort";
  pp_latency_histogram metrics "encompass.tx_latency_ms.hist" "end-to-end";
  pp_latency_histogram metrics "tmf.recovery_ms" "recovery";
  pp_indoubt_histogram metrics;
  Format.printf "@.%a@." (Span.pp_summary ~top) spans;
  match json with
  | None -> ()
  | Some path -> (
      match open_out path with
      | out ->
          output_string out
            (Json.to_string ~pretty:true
               (Json.Obj
                  [
                    ("metrics", Metrics.to_json metrics);
                    ("spans", Span.summary_json ~top spans);
                  ]));
          output_string out "\n";
          close_out out;
          Printf.printf "stats written to %s\n" path
      | exception Sys_error message ->
          Printf.eprintf "cannot write stats: %s\n" message;
          exit 1)

let run_stats workload seed cpus volumes terminals servers seconds skew top
    json =
  match workload with
  | "bank" ->
      let cluster, tcp =
        setup_bank ~seed ~cpus ~volumes ~terminals ~servers ~seconds ~skew ()
      in
      Cluster.run ~until:(Sim_time.seconds seconds) cluster;
      Printf.printf
        "bank: %ds simulated on %d cpus / %d volumes — %d committed (%.1f \
         tx/s), %d restarts, %d failed\n\n"
        seconds cpus volumes (Tcp.completed tcp)
        (float_of_int (Tcp.completed tcp) /. float_of_int (max 1 seconds))
        (Tcp.restarts tcp) (Tcp.failures tcp);
      print_stats ~top ~json cluster
  | "mfg" ->
      let t = Tandem_mfg.Mfg_app.build ~seed () in
      let cluster = Tandem_mfg.Mfg_app.cluster t in
      Tandem_mfg.Mfg_app.start_monitors t ();
      let rng = Rng.create ~seed:(seed + 1) in
      let engine = Cluster.engine cluster in
      let rec traffic () =
        if Engine.now engine < Sim_time.seconds seconds then begin
          let plant = 1 + Rng.int rng 4 in
          if Rng.bernoulli rng ~p:0.3 then
            Tandem_mfg.Mfg_app.submit_global_update t ~via:plant
              ~item:(Rng.int rng (Tandem_mfg.Mfg_app.item_count t))
              ~description:(Printf.sprintf "rev-%d" (Rng.int rng 100_000))
          else
            Tandem_mfg.Mfg_app.submit_stock_update t ~node:plant
              ~item:(Rng.int rng (Tandem_mfg.Mfg_app.item_count t))
              ~quantity:(Rng.int_in_range rng ~lo:(-5) ~hi:5);
          ignore (Engine.schedule_after engine (Sim_time.milliseconds 700) traffic)
        end
      in
      traffic ();
      Cluster.run ~until:(Sim_time.seconds seconds) cluster;
      Printf.printf "mfg: %ds simulated across four plants\n\n" seconds;
      print_stats ~top ~json cluster
  | other ->
      Printf.printf "unknown workload %S (try bank or mfg)\n" other;
      exit 1

let stats_cmd =
  let workload =
    Arg.(value & pos 0 string "bank" & info [] ~docv:"WORKLOAD" ~doc:"bank or mfg.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let cpus = Arg.(value & opt int 4 & info [ "cpus" ] ~doc:"Processors (2-16).") in
  let volumes = Arg.(value & opt int 1 & info [ "volumes" ] ~doc:"Data volumes.") in
  let terminals = Arg.(value & opt int 8 & info [ "terminals" ] ~doc:"Terminals (1-32).") in
  let servers = Arg.(value & opt int 4 & info [ "servers" ] ~doc:"BANK server class size.") in
  let seconds = Arg.(value & opt int 30 & info [ "seconds" ] ~doc:"Simulated run length.") in
  let skew = Arg.(value & opt float 0.0 & info [ "skew" ] ~doc:"Zipf theta over accounts.") in
  let top = Arg.(value & opt int 5 & info [ "top" ] ~doc:"Slowest transactions to show.") in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH"
         ~doc:"Also write metrics and span summary as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a workload and print metrics, latency percentiles and the \
             transaction span summary")
    Term.(
      const run_stats $ workload $ seed $ cpus $ volumes $ terminals $ servers
      $ seconds $ skew $ top $ json)

(* ------------------------------------------------------------------ *)
(* trace: run the bank with trace subsystems enabled and print the event
   log plus the lifecycle timelines of the slowest transactions. *)

let pp_time_us formatter = function
  | None -> Format.pp_print_string formatter "-"
  | Some at -> Format.fprintf formatter "%a" Sim_time.pp at

let print_timeline span =
  Format.printf "  %s [%s]@." span.Span.span_id
    (Span.outcome_to_string span.Span.outcome);
  Format.printf "    begin=%a phase1=%a phase2=%a backout=%a end=%a@."
    Sim_time.pp span.Span.begin_at pp_time_us span.Span.phase1_at pp_time_us
    span.Span.phase2_at pp_time_us span.Span.backout_at pp_time_us
    span.Span.end_at;
  Format.printf
    "    msgs=%d prepares=%d phase2_msgs=%d forces=%d lock_waits=%d \
     restarts=%d undone=%d remote_nodes=%d@."
    span.Span.messages span.Span.prepares span.Span.phase2_msgs
    span.Span.forced_writes span.Span.lock_waits span.Span.restarts
    span.Span.images_undone span.Span.remote_nodes

let run_trace seed cpus volumes terminals servers seconds skew tags top =
  let tags = if tags = [] then [ "*" ] else tags in
  let cluster, tcp =
    setup_bank ~trace_tags:tags ~seed ~cpus ~volumes ~terminals ~servers
      ~seconds ~skew ()
  in
  let trace = Tandem_os.Net.trace (Cluster.net cluster) in
  Cluster.run ~until:(Sim_time.seconds seconds) cluster;
  Printf.printf "bank: %ds simulated — %d committed, %d restarts, %d failed\n"
    seconds (Tcp.completed tcp) (Tcp.restarts tcp) (Tcp.failures tcp);
  let entries = Tandem_sim.Trace.entries trace in
  Printf.printf "\ntrace (%d entries):\n" (List.length entries);
  List.iter (fun e -> Format.printf "  %a@." Tandem_sim.Trace.pp_entry e) entries;
  let spans = Cluster.spans cluster in
  Printf.printf "\nslowest transactions:\n";
  List.iter print_timeline (Span.slowest ~n:top spans)

let trace_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let cpus = Arg.(value & opt int 4 & info [ "cpus" ] ~doc:"Processors (2-16).") in
  let volumes = Arg.(value & opt int 1 & info [ "volumes" ] ~doc:"Data volumes.") in
  let terminals = Arg.(value & opt int 4 & info [ "terminals" ] ~doc:"Terminals (1-32).") in
  let servers = Arg.(value & opt int 2 & info [ "servers" ] ~doc:"BANK server class size.") in
  let seconds = Arg.(value & opt int 5 & info [ "seconds" ] ~doc:"Simulated run length.") in
  let skew = Arg.(value & opt float 0.0 & info [ "skew" ] ~doc:"Zipf theta over accounts.") in
  let tags =
    Arg.(value & opt_all string [] & info [ "tag" ]
         ~doc:"Trace subsystem to enable (tmf, pair, hw, net, bus; repeatable; \
               default all).")
  in
  let top = Arg.(value & opt int 5 & info [ "top" ] ~doc:"Slowest transactions to show.") in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run the bank with trace subsystems enabled and print the event \
             log and span timelines")
    Term.(
      const run_trace $ seed $ cpus $ volumes $ terminals $ servers $ seconds
      $ skew $ tags $ top)

(* ------------------------------------------------------------------ *)
(* mfg: the four-plant manufacturing data base with a partition window. *)

let run_mfg seed seconds partition_at heal_at =
  let t = Tandem_mfg.Mfg_app.build ~seed () in
  let cluster = Tandem_mfg.Mfg_app.cluster t in
  let net = Cluster.net cluster in
  Tandem_mfg.Mfg_app.start_monitors t ();
  let rng = Rng.create ~seed:(seed + 1) in
  let engine = Cluster.engine cluster in
  (* Background traffic: local stock movements and global updates. *)
  let rec traffic () =
    if Engine.now engine < Sim_time.seconds seconds then begin
      let plant = 1 + Rng.int rng 4 in
      if Rng.bernoulli rng ~p:0.3 then begin
        let item = Rng.int rng (Tandem_mfg.Mfg_app.item_count t) in
        if
          Tandem_os.Net.reachable net plant
            (Tandem_mfg.Mfg_app.master_of t ~item)
        then
          Tandem_mfg.Mfg_app.submit_global_update t ~via:plant ~item
            ~description:(Printf.sprintf "rev-%d" (Rng.int rng 100_000))
      end
      else
        Tandem_mfg.Mfg_app.submit_stock_update t ~node:plant
          ~item:(Rng.int rng (Tandem_mfg.Mfg_app.item_count t))
          ~quantity:(Rng.int_in_range rng ~lo:(-5) ~hi:5);
      ignore (Engine.schedule_after engine (Sim_time.milliseconds 700) traffic)
    end
  in
  traffic ();
  (match partition_at with
  | Some at ->
      ignore
        (Engine.schedule_after engine (Sim_time.seconds at) (fun () ->
             Printf.printf "[inject] partitioning Neufahrn away at %ds\n" at;
             Tandem_os.Net.partition net [ 1; 2; 3 ] [ 4 ]));
      ignore
        (Engine.schedule_after engine (Sim_time.seconds heal_at) (fun () ->
             Printf.printf "[inject] healing the network at %ds\n" heal_at;
             Tandem_os.Net.heal_partition net))
  | None -> ());
  Cluster.run ~until:(Sim_time.seconds seconds) cluster;
  Printf.printf "\nafter %ds simulated:\n" seconds;
  List.iter
    (fun (plant, name) ->
      Printf.printf "  %-12s completed=%-4d suspense backlog=%d\n" name
        (Tcp.completed (Tandem_mfg.Mfg_app.tcp t plant))
        (Tandem_mfg.Mfg_app.suspense_backlog t plant))
    Tandem_mfg.Mfg_app.plant_names;
  Printf.printf "  divergent items: %d (converged: %b)\n"
    (Tandem_mfg.Mfg_app.divergent_items t)
    (Tandem_mfg.Mfg_app.replicas_converged t)

let mfg_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let seconds = Arg.(value & opt int 60 & info [ "seconds" ] ~doc:"Simulated run length.") in
  let partition_at =
    Arg.(value & opt (some int) None & info [ "partition" ] ~doc:"Cut Neufahrn off at this instant.")
  in
  let heal_at =
    Arg.(value & opt int 40 & info [ "heal" ] ~doc:"Reconnect at this instant.")
  in
  Cmd.v
    (Cmd.info "mfg" ~doc:"Run the four-plant manufacturing data base")
    Term.(const run_mfg $ seed $ seconds $ partition_at $ heal_at)

(* ------------------------------------------------------------------ *)
(* query: run a mini-ENFORM query against a freshly-loaded bank. *)

let run_query seconds text =
  let cluster = Cluster.create ~seed:7 () in
  ignore (Cluster.add_node cluster ~id:1 ~cpus:4);
  ignore (Cluster.add_volume cluster ~node:1 ~name:"$DATA1" ~primary_cpu:2 ~backup_cpu:3 ());
  let spec =
    {
      Workload.accounts = 100;
      tellers = 10;
      branches = 5;
      initial_balance = 1_000;
      account_partitions = [ (1, "$DATA1") ];
      system_home = (1, "$DATA1");
    }
  in
  Workload.install_bank cluster spec;
  ignore (Workload.add_bank_servers cluster ~node:1 ~count:2 ());
  let tcp =
    Cluster.add_tcp cluster ~node:1 ~name:"$TCP1" ~terminals:8
      ~program:Workload.debit_credit_program ()
  in
  let rng = Rng.create ~seed:13 in
  for terminal = 0 to 7 do
    for _ = 1 to 10 * seconds do
      Tcp.submit tcp ~terminal (Workload.debit_credit_input rng spec ())
    done
  done;
  Cluster.run ~until:(Sim_time.seconds seconds) cluster;
  Printf.printf "ran %d transactions over %ds of banking, then:
  %s

"
    (Tcp.completed tcp) seconds text;
  let dp = Cluster.discprocess cluster ~node:1 ~volume:"$DATA1" in
  match Tandem_db.Query.parse text with
  | Error m -> Printf.printf "parse error: %s
" m
  | Ok query -> (
      match Discprocess.file dp query.Tandem_db.Query.file with
      | None -> Printf.printf "no such file %s (try ACCOUNT, TELLER, BRANCH, HISTORY)
" query.Tandem_db.Query.file
      | Some file -> (
          match Tandem_db.Query.run query file with
          | Error m -> Printf.printf "error: %s
" m
          | Ok rows ->
              List.iter
                (fun row -> Format.printf "%a@." Tandem_db.Query.pp_row row)
                rows;
              Printf.printf "(%d row(s))
" (List.length rows)))

let query_cmd =
  let seconds = Arg.(value & opt int 10 & info [ "seconds" ] ~doc:"Banking warm-up length.") in
  let text =
    Arg.(
      value
      & pos_all string [ "FIND"; "ACCOUNT"; "WHERE"; "balance"; ">"; "1100"; "SORTED"; "BY"; "balance" ]
      & info [] ~docv:"QUERY")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a mini-ENFORM query over a freshly-run bank data base")
    Term.(const (fun s q -> run_query s (String.concat " " q)) $ seconds $ text)

(* ------------------------------------------------------------------ *)
(* indoubt: the paper's manual-override utility for in-doubt transactions,
   demonstrated on a reproducible wreck. Two transactions are pinned
   mid-commit (home node 3, writes and yes votes at node 2, one with a
   durable commit decision), the home node is killed, and the survivors'
   in-doubt lists are printed. [--resolve] runs each survivor's own
   resolution attempt — under 2PC the dead home cannot answer and the
   locks stay held; under Paxos Commit the acceptors deliver the verdict
   without the home. [--force] is the operator override for the outcomes
   learned out-of-band. *)

let indoubt_nodes = [ 1; 2; 3 ]

let print_indoubt_table cluster =
  let engine = Cluster.engine cluster in
  let any = ref false in
  List.iter
    (fun node ->
      List.iter
        (fun (info : Tmf.Tmf_state.tx_info) ->
          any := true;
          let age =
            match info.Tmf.Tmf_state.voted_at with
            | None -> "-"
            | Some at ->
                Printf.sprintf "%dus" (Sim_time.diff (Engine.now engine) at)
          in
          Printf.printf "  node %d  %-12s home=%d voted-at=%s in-doubt-for=%s volumes=%d\n"
            node
            (Tmf.Transid.to_string info.Tmf.Tmf_state.transid)
            (Tmf.Transid.home info.Tmf.Tmf_state.transid)
            (match info.Tmf.Tmf_state.voted_at with
            | None -> "-"
            | Some at -> Sim_time.to_string at)
            age
            (List.length info.Tmf.Tmf_state.local_volumes))
        (Tmf.Tmp.in_doubt_transactions (Tmf.tmp (Cluster.tmf cluster) node)))
    indoubt_nodes;
  if not !any then Printf.printf "  (none)\n"

(* Drive a client fiber to completion: [run_client] only spawns it. *)
let drive_client cluster ~node body =
  let finished = ref false in
  Cluster.run_client cluster ~node ~cpu:1 (fun self ->
      Fun.protect ~finally:(fun () -> finished := true) (fun () -> body self));
  let rec pump budget =
    if (not !finished) && budget > 0 then begin
      Cluster.run_for cluster (Sim_time.milliseconds 1);
      pump (budget - 1)
    end
  in
  pump 2_000

let run_indoubt protocol_name acceptors seed resolve force =
  let protocol =
    match protocol_name with
    | "2pc" -> `Two_phase
    | "paxos" -> `Paxos acceptors
    | other ->
        Printf.eprintf "unknown protocol %S (try 2pc or paxos)\n" other;
        exit 2
  in
  let config =
    { Tandem_os.Hw_config.default with tmp_commit_protocol = protocol }
  in
  let tmp_config =
    { Tmf.Tmp.default_config with
      transaction_time_limit = Sim_time.seconds 1 }
  in
  let open Tandem_chaos in
  let bank =
    Harness.build_bank ~nodes:3 ~transfers:false ~config ~tmp_config ~seed
      ~quick:true ()
  in
  let cluster = bank.Harness.cluster in
  (* Quiet cluster: leave the preloaded terminal queues unserved by
     stopping at 60 ms, before any TCP transaction can interleave with the
     pinned ones. *)
  Cluster.run ~until:(Sim_time.milliseconds 60) cluster;
  let home = 3 and participant = 2 in
  let base = Indoubt.partition_base bank.Harness.spec ~node:participant in
  let tx_blocked =
    Indoubt.pin_transfer cluster ~home ~participant ~from_account:base
      ~to_account:(base + 1) ~amount:50
  in
  let tx_decided =
    Indoubt.pin_transfer cluster ~home ~participant ~from_account:(base + 2)
      ~to_account:(base + 3) ~amount:50
  in
  let decided =
    match protocol with
    | `Two_phase -> Indoubt.decide_2pc cluster ~home tx_decided
    | `Paxos _ ->
        Indoubt.decide_paxos cluster ~home
          ~participants:[ participant; home ] ~acceptor_count:acceptors
          tx_decided
  in
  if tx_blocked.Indoubt.transid = None || tx_decided.Indoubt.transid = None
     || not decided
  then begin
    Printf.eprintf "failed to pin the demonstration transactions\n";
    exit 1
  end;
  let injector = Injector.create cluster in
  Injector.apply injector
    (Fault.Partition { group_a = [ 1; 2 ]; group_b = [ home ] });
  Injector.apply injector (Fault.Node_crash { node = home });
  Printf.printf
    "protocol=%s: pinned two transactions at node %d (home node %d now \
     dead):\n  %-12s home never decided\n  %-12s decision durable, phase \
     two never sent\n\n"
    protocol_name participant home
    (match tx_blocked.Indoubt.transid with
    | Some t -> Tmf.Transid.to_string t
    | None -> "-")
    (match tx_decided.Indoubt.transid with
    | Some t -> Tmf.Transid.to_string t
    | None -> "-");
  Printf.printf "in-doubt transactions (locks held):\n";
  print_indoubt_table cluster;
  let survivors () =
    List.concat_map
      (fun node ->
        List.map
          (fun (info : Tmf.Tmf_state.tx_info) ->
            (node, info.Tmf.Tmf_state.transid))
          (Tmf.Tmp.in_doubt_transactions (Tmf.tmp (Cluster.tmf cluster) node)))
      (List.filter (fun n -> n <> home) indoubt_nodes)
  in
  if resolve then begin
    Printf.printf "\nresolving at the survivors (home still dead):\n";
    List.iter
      (fun (node, transid) ->
        drive_client cluster ~node (fun self ->
            Tmf.Tmp.resolve_in_doubt
              (Tmf.tmp (Cluster.tmf cluster) node)
              ~self transid))
      (survivors ());
    Printf.printf "in-doubt after resolution attempts:\n";
    print_indoubt_table cluster
  end;
  (match force with
  | None -> ()
  | Some verdict ->
      let disposition =
        match verdict with
        | "commit" -> Tandem_audit.Monitor_trail.Committed
        | "abort" -> Tandem_audit.Monitor_trail.Aborted
        | other ->
            Printf.eprintf "unknown --force %S (try commit or abort)\n" other;
            exit 2
      in
      Printf.printf "\nforcing %s on the remaining in-doubt transactions:\n"
        verdict;
      List.iter
        (fun (node, transid) ->
          Printf.printf "  node %d %s: operator override\n" node
            (Tmf.Transid.to_string transid);
          drive_client cluster ~node (fun self ->
              Tmf.Tmp.force_disposition
                (Tmf.tmp (Cluster.tmf cluster) node)
                ~self transid disposition))
        (survivors ());
      Printf.printf "in-doubt after override:\n";
      print_indoubt_table cluster);
  Printf.printf "\ndispositions at node %d: undecided=%s decided=%s\n"
    participant
    (Indoubt.disposition_name
       (Indoubt.disposition cluster ~node:participant tx_blocked))
    (Indoubt.disposition_name
       (Indoubt.disposition cluster ~node:participant tx_decided))

let indoubt_cmd =
  let protocol =
    Arg.(
      value & opt string "2pc"
      & info [ "protocol" ] ~docv:"PROTO"
          ~doc:"Commit protocol: 2pc or paxos.")
  in
  let acceptors =
    Arg.(
      value & opt int 3
      & info [ "acceptors" ] ~doc:"Acceptor count under paxos (2f+1).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let resolve =
    Arg.(
      value & flag
      & info [ "resolve" ]
          ~doc:
            "Run each survivor's own resolution attempt: blocked under 2pc \
             (the home is dead), verdicts delivered by the acceptors under \
             paxos.")
  in
  let force =
    Arg.(
      value & opt (some string) None
      & info [ "force" ] ~docv:"VERDICT"
          ~doc:
            "Operator override: impose commit or abort on every remaining \
             in-doubt transaction.")
  in
  Cmd.v
    (Cmd.info "indoubt"
       ~doc:
         "Demonstrate the in-doubt list/resolve utility on a home-node \
          crash, under either commit protocol")
    Term.(const run_indoubt $ protocol $ acceptors $ seed $ resolve $ force)

(* ------------------------------------------------------------------ *)
(* state-machine: print Figure 3. *)

let run_state_machine () =
  Printf.printf "Transaction state transitions (Figure 3):\n\n";
  List.iter
    (fun from ->
      List.iter
        (fun into ->
          if Tmf.Tx_state.legal_transition from into then
            Printf.printf "  %-8s -> %s\n"
              (Tmf.Tx_state.to_string from)
              (Tmf.Tx_state.to_string into))
        Tmf.Tx_state.all)
    Tmf.Tx_state.all;
  Printf.printf "\nterminal states:";
  List.iter
    (fun s ->
      if Tmf.Tx_state.is_terminal s then
        Printf.printf " %s" (Tmf.Tx_state.to_string s))
    Tmf.Tx_state.all;
  Printf.printf " (the transid then leaves the system)\n"

let state_machine_cmd =
  Cmd.v
    (Cmd.info "state-machine" ~doc:"Print the Figure 3 transaction state machine")
    Term.(const run_state_machine $ const ())

(* ------------------------------------------------------------------ *)
(* chaos: the deterministic fault-injection scenario matrix. *)

let chaos_list () =
  List.iter
    (fun s ->
      Printf.printf "%-26s %s\n%-26s   (%s)\n" s.Tandem_chaos.Scenario.name
        s.Tandem_chaos.Scenario.description ""
        s.Tandem_chaos.Scenario.paper)
    Tandem_chaos.Scenarios.all

let chaos_summary_table reports =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer
    "| scenario | seed | faults | committed | restarts | checks | verdict |\n";
  Buffer.add_string buffer "|---|---|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      let open Tandem_chaos in
      let ok =
        List.length
          (List.filter
             (fun (c : Checker.check) -> c.Checker.passed)
             r.Scenario.verdict.Checker.checks)
      in
      Buffer.add_string buffer
        (Printf.sprintf "| %s | %d | %d | %d | %d | %d/%d | %s |\n"
           r.Scenario.scenario r.Scenario.seed r.Scenario.faults
           r.Scenario.committed r.Scenario.restarts ok
           (List.length r.Scenario.verdict.Checker.checks)
           (if Scenario.passed r then "✅ pass" else "❌ FAIL")))
    reports;
  Buffer.contents buffer

let run_chaos list_only scenario_name seeds quick show_schedule
    verify_determinism summary_path jobs =
  let open Tandem_chaos in
  if list_only then begin
    chaos_list ();
    0
  end
  else begin
    let scenarios =
      match scenario_name with
      | None -> Scenarios.all
      | Some name -> (
          match Scenarios.find name with
          | Some s -> [ s ]
          | None ->
              Printf.eprintf "unknown scenario %S; try one of:\n  %s\n" name
                (String.concat "\n  " Scenarios.names);
              exit 2)
    in
    let seeds = if seeds = [] then [ 42; 1981; 7 ] else seeds in
    let jobs =
      match jobs with
      | Some n when n >= 1 -> n
      | Some n ->
          Printf.eprintf "--jobs %d: expected a positive integer\n" n;
          exit 2
      | None -> Tandem_sim.Domain_pool.jobs_from_env ()
    in
    let tasks =
      List.concat_map
        (fun s -> List.map (fun seed -> (s, seed)) seeds)
        scenarios
    in
    (* Each (scenario, seed) run is a sealed simulation, so the matrix fans
       out on the domain pool. Workers never print: a task returns its
       report (plus the rerun's fingerprint verdict under
       --verify-determinism) and the main domain renders everything
       afterwards in matrix order — stdout is byte-identical at any
       --jobs. *)
    let results =
      Tandem_sim.Domain_pool.map ~jobs
        (fun (s, seed) ->
          let report = Scenario.run s ~seed ~quick in
          let deterministic =
            (not verify_determinism)
            || String.equal
                 (Scenario.fingerprint report)
                 (Scenario.fingerprint (Scenario.run s ~seed ~quick))
          in
          (report, deterministic))
        tasks
    in
    let determinism_failures = ref 0 in
    List.iter
      (fun (report, deterministic) ->
        print_endline (Scenario.summary_line report);
        if show_schedule || not (Scenario.passed report) then begin
          print_endline report.Scenario.schedule;
          print_endline (Checker.verdict_to_string report.Scenario.verdict)
        end;
        if not deterministic then begin
          incr determinism_failures;
          Printf.printf "DETERMINISM FAILURE %s seed=%d: reruns diverged\n"
            report.Scenario.scenario report.Scenario.seed
        end)
      results;
    let reports = List.map fst results in
    let failed = List.filter (fun r -> not (Scenario.passed r)) reports in
    (match summary_path with
    | None -> ()
    | Some path ->
        let channel = open_out_gen [ Open_append; Open_creat ] 0o644 path in
        output_string channel "## chaos matrix\n\n";
        output_string channel (chaos_summary_table reports);
        close_out channel);
    Printf.printf "\n%d/%d runs passed"
      (List.length reports - List.length failed)
      (List.length reports);
    if verify_determinism then
      Printf.printf ", %d determinism failure(s)" !determinism_failures;
    print_newline ();
    if failed = [] && !determinism_failures = 0 then 0 else 1
  end

let chaos_cmd =
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List scenarios and exit.")
  in
  let scenario_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Run one scenario instead of the whole matrix.")
  in
  let seeds =
    Arg.(
      value
      & opt (list int) []
      & info [ "seeds" ] ~docv:"N,M,..."
          ~doc:"Seeds to run each scenario under (default 42,1981,7).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Small clusters and short schedules, for CI.")
  in
  let show_schedule =
    Arg.(
      value & flag
      & info [ "show-schedule" ]
          ~doc:"Print each run's fault schedule and verdict.")
  in
  let verify_determinism =
    Arg.(
      value & flag
      & info [ "verify-determinism" ]
          ~doc:
            "Run every selected (scenario, seed) twice and fail unless the \
             reports are byte-identical.")
  in
  let summary =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"PATH"
          ~doc:
            "Append a markdown results table to $(docv) (e.g. \
             \\$GITHUB_STEP_SUMMARY).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run the scenario×seed matrix on $(docv) OS domains (default \
             the $(b,TANDEM_JOBS) environment variable, else 1 = serial). \
             Every run is an independent simulation, so fingerprints, \
             verdicts and output are byte-identical at any job count.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run the deterministic fault-injection scenario matrix")
    Term.(
      const
        (fun list_only scenario seeds quick show_schedule verify summary jobs ->
          Stdlib.exit
            (run_chaos list_only scenario seeds quick show_schedule verify
               summary jobs))
      $ list_only $ scenario_name $ seeds $ quick $ show_schedule
      $ verify_determinism $ summary $ jobs)

let () =
  let man =
    [
      `S "HARDWARE CONFIGURATION";
      `P
        "Simulated-hardware knobs ($(b,Hw_config)) and their defaults. Set \
         them in code when building a cluster; benchmarks ablate them one \
         at a time.";
    ]
    @ List.map
        (fun (name, default, doc) ->
          `I (Printf.sprintf "$(b,%s) (default %s)" name default, doc))
        Tandem_os.Hw_config.knob_docs
  in
  let info =
    Cmd.info "tandem" ~version:"1.0.0"
      ~doc:"Simulated ENCOMPASS/TMF: reliable distributed transaction processing"
      ~man
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            bank_cmd;
            stats_cmd;
            trace_cmd;
            mfg_cmd;
            query_cmd;
            chaos_cmd;
            indoubt_cmd;
            state_machine_cmd;
          ]))
